#include "fleet/simulator.h"

#include <algorithm>
#include <stdexcept>

namespace generic::fleet {

namespace {

struct PendingSend {
  Send send;
  std::size_t port = 0;
};

/// Min-heap order on (send_us, tenant, client): simultaneous sends resolve
/// in tenant/client order on both ingress paths.
struct SendAfter {
  bool operator()(const PendingSend& a, const PendingSend& b) const {
    if (a.send.send_us != b.send.send_us) return a.send.send_us > b.send.send_us;
    if (a.send.tenant != b.send.tenant) return a.send.tenant > b.send.tenant;
    return a.send.client > b.send.client;
  }
};

struct Outstanding {
  Send send;
  serve::ResponseFuture future;
};

}  // namespace

std::vector<std::unique_ptr<ClientPort>> make_sim_ports(
    const FleetConfig& cfg, const FleetEngine& fleet) {
  const std::vector<std::uint32_t> queries = fleet.model_queries();
  std::vector<std::unique_ptr<ClientPort>> ports;
  for (std::size_t t = 0; t < cfg.tenants.size(); ++t)
    for (std::size_t c = 0; c < cfg.tenants[t].clients; ++c)
      ports.push_back(std::make_unique<SimClientPort>(
          cfg, static_cast<std::uint16_t>(t), static_cast<std::uint16_t>(c),
          queries));
  return ports;
}

std::size_t run_closed_loop(FleetEngine& fleet,
                            const std::vector<ClientPort*>& ports) {
  std::vector<PendingSend> heap;
  std::vector<std::optional<Outstanding>> outstanding(ports.size());
  std::size_t delivered = 0;

  auto push_send = [&](std::size_t port, const Send& s) {
    heap.push_back(PendingSend{s, port});
    std::push_heap(heap.begin(), heap.end(), SendAfter{});
  };

  // Deliver every future resolved by the tick that just ran, in
  // (finish_us, tenant, client) order, and push each client's next send.
  auto harvest = [&] {
    std::vector<std::size_t> ready;
    for (std::size_t p = 0; p < ports.size(); ++p) {
      if (!outstanding[p]) continue;
      if (outstanding[p]->future.try_get()) ready.push_back(p);
    }
    std::sort(ready.begin(), ready.end(), [&](std::size_t a, std::size_t b) {
      const serve::Response ra = *outstanding[a]->future.try_get();
      const serve::Response rb = *outstanding[b]->future.try_get();
      if (ra.finish_us != rb.finish_us) return ra.finish_us < rb.finish_us;
      if (outstanding[a]->send.tenant != outstanding[b]->send.tenant)
        return outstanding[a]->send.tenant < outstanding[b]->send.tenant;
      return outstanding[a]->send.client < outstanding[b]->send.client;
    });
    for (std::size_t p : ready) {
      const Send s = outstanding[p]->send;
      const serve::Response r = *outstanding[p]->future.try_get();
      outstanding[p].reset();
      const FleetResponse resp = fleet.complete(s, r);
      ++delivered;
      if (auto next = ports[p]->on_response(resp)) push_send(p, *next);
    }
  };

  for (std::size_t p = 0; p < ports.size(); ++p)
    if (auto first = ports[p]->start()) push_send(p, *first);

  for (;;) {
    // Earliest engine event across the fleet (ties: lowest model index).
    std::size_t next_model = 0;
    std::uint64_t te = serve::ServeEngine::kNoEvent;
    for (std::size_t m = 0; m < fleet.num_models(); ++m) {
      if (fleet.next_event(m) < te) {
        te = fleet.next_event(m);
        next_model = m;
      }
    }
    const std::uint64_t ts =
        heap.empty() ? serve::ServeEngine::kNoEvent : heap.front().send.send_us;

    if (te == serve::ServeEngine::kNoEvent &&
        ts == serve::ServeEngine::kNoEvent) {
      bool idle = true;
      for (const auto& o : outstanding) idle = idle && !o;
      if (idle) break;
      // Outstanding futures with no scheduled engine event cannot happen:
      // every in-flight request has a completion or retry on some heap.
      throw std::logic_error("run_closed_loop: stalled with futures pending");
    }

    if (te <= ts) {
      // Engine events run before sends at the same instant, so a send at T
      // always sees the post-event queue/backlog state — the same order
      // the engines themselves use (advance_to before on_arrival).
      fleet.tick_model(next_model, te);
      harvest();
      continue;
    }

    std::pop_heap(heap.begin(), heap.end(), SendAfter{});
    const PendingSend ps = heap.back();
    heap.pop_back();
    FleetResponse rejection;
    if (auto future = fleet.route(ps.send, rejection)) {
      outstanding[ps.port] = Outstanding{ps.send, std::move(*future)};
      // Re-sync the engine: flush everything the submission made ready at
      // its arrival instant and refresh the next-event cache.
      fleet.tick_model(ps.send.model, ps.send.send_us);
      harvest();
    } else {
      ++delivered;
      if (auto next = ports[ps.port]->on_response(rejection))
        push_send(ps.port, *next);
    }
  }
  return delivered;
}

}  // namespace generic::fleet
