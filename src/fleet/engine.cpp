#include "fleet/engine.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <stdexcept>

#include "data/drift.h"
#include "encoding/encoders.h"
#include "model/pipeline.h"
#include "obs/rtrace.h"

namespace generic::fleet {

namespace rtrace = obs::rtrace;

std::string_view priority_name(PriorityClass p) {
  switch (p) {
    case PriorityClass::kCritical: return "critical";
    case PriorityClass::kStandard: return "standard";
    case PriorityClass::kBatch: return "batch";
  }
  return "unknown";
}

std::string_view fleet_status_name(FleetStatus s) {
  switch (s) {
    case FleetStatus::kOk: return "ok";
    case FleetStatus::kRetried: return "retried";
    case FleetStatus::kDegraded: return "degraded";
    case FleetStatus::kShed: return "shed";
    case FleetStatus::kTimeout: return "timeout";
    case FleetStatus::kFailed: return "failed";
    case FleetStatus::kQuotaRejected: return "quota_rejected";
    case FleetStatus::kPriorityShed: return "priority_shed";
  }
  return "unknown";
}

FleetConfig default_fleet_config(bool quick) {
  FleetConfig cfg;
  cfg.seed = 0xF1EE7;

  // Three models with distinct shapes: a small fast one, a mid one, and a
  // wider, slower one — enough contrast that routing and per-model ladders
  // tell different stories in the report.
  const struct {
    const char* id;
    std::size_t dims, classes, features;
    std::uint64_t service_base_us;
    std::size_t servers;
    std::uint64_t world_seed;
  } kModels[] = {
      {"face", 1024, 4, 48, 700, 2, 0xFACE01},
      {"digits", 2048, 10, 64, 900, 2, 0xD16175},
      {"pages", 1536, 5, 56, 800, 1, 0x9A6E5},
  };
  for (const auto& m : kModels) {
    ModelSpec spec;
    spec.id = m.id;
    spec.dims = quick ? m.dims / 2 : m.dims;
    spec.classes = m.classes;
    spec.features = m.features;
    spec.train_samples = quick ? 400 : 900;
    spec.queries = quick ? 160 : 320;
    spec.epochs = quick ? 3 : 6;
    spec.world_seed = m.world_seed;
    spec.serve.model_id = m.id;
    spec.serve.servers = m.servers;
    spec.serve.service_base_us = m.service_base_us;
    spec.serve.seed = cfg.seed ^ m.world_seed;
    spec.serve.min_dims = spec.dims >= 1024 ? 512 : 256;
    cfg.models.push_back(std::move(spec));
  }

  // Three tenants spanning the priority ladder. gold is critical and
  // modest; silver is the bulk; bronze is batch traffic that sheds first.
  TenantSpec gold;
  gold.name = "gold";
  gold.priority = PriorityClass::kCritical;
  gold.quota_rps = 1500;
  gold.quota_burst = 8;
  gold.clients = 2;
  gold.think_mean_us = 2500;
  gold.requests_per_client = quick ? 40 : 120;

  TenantSpec silver;
  silver.name = "silver";
  silver.priority = PriorityClass::kStandard;
  silver.quota_rps = 2500;
  silver.quota_burst = 12;
  silver.clients = 4;
  silver.think_mean_us = 1800;
  silver.requests_per_client = quick ? 40 : 120;

  TenantSpec bronze;
  bronze.name = "bronze";
  bronze.priority = PriorityClass::kBatch;
  bronze.quota_rps = 1200;
  bronze.quota_burst = 6;
  bronze.clients = 3;
  bronze.think_mean_us = 1200;
  bronze.requests_per_client = quick ? 40 : 120;

  cfg.tenants = {gold, silver, bronze};
  return cfg;
}

ModelWorld build_world(const ModelSpec& spec, ThreadPool& pool) {
  data::DriftStreamSpec dspec;
  dspec.classes = spec.classes;
  dspec.features = spec.features;
  dspec.seed = spec.world_seed;
  data::DriftStream stream(dspec);
  const auto ds = stream.make_dataset(spec.train_samples, spec.queries, false);

  enc::EncoderConfig ecfg;
  ecfg.dims = spec.dims;
  ecfg.seed = spec.world_seed ^ 0xE2C0DE;
  enc::GenericEncoder encoder(ecfg);
  encoder.fit(ds.train_x);

  ModelWorld world;
  const auto train = model::encode_all(encoder, ds.train_x, pool);
  world.classifier =
      std::make_shared<model::HdcClassifier>(spec.dims, spec.classes);
  world.classifier->fit_parallel(train, ds.train_y, spec.epochs, pool);
  world.queries = model::encode_all(encoder, ds.test_x, pool);
  world.labels = ds.test_y;
  return world;
}

FleetEngine::FleetEngine(const FleetConfig& cfg, std::vector<ModelWorld> worlds,
                         ThreadPool& pool)
    : cfg_(cfg), worlds_(std::move(worlds)), burn_(serve::ServeConfig{}) {
  if (cfg_.models.empty()) throw std::invalid_argument("FleetEngine: no models");
  if (cfg_.tenants.empty())
    throw std::invalid_argument("FleetEngine: no tenants");
  if (worlds_.size() != cfg_.models.size())
    throw std::invalid_argument("FleetEngine: worlds/models size mismatch");

  engines_.reserve(cfg_.models.size());
  for (std::size_t m = 0; m < cfg_.models.size(); ++m) {
    const ModelWorld& w = worlds_[m];
    serve::ServeConfig scfg = cfg_.models[m].serve;
    if (scfg.model_id.empty()) scfg.model_id = cfg_.models[m].id;
    engines_.push_back(std::make_unique<serve::ServeEngine>(
        *w.classifier, w.queries, w.labels, scfg, pool));
    Model st;
    // Backlog cost estimate: mean full-dims service time spread over the
    // model's virtual lanes. An ESTIMATOR for shedding, not the engine's
    // actual (jittered, rung-dependent) cost — but a deterministic one.
    st.cost_us = std::max<std::uint64_t>(
        1, scfg.service_base_us / std::max<std::size_t>(1, scfg.servers));
    models_.push_back(st);
  }
  next_event_.assign(engines_.size(), serve::ServeEngine::kNoEvent);

  tenants_.reserve(cfg_.tenants.size());
  for (const TenantSpec& t : cfg_.tenants) {
    Tenant st;
    st.quota_rps = t.quota_rps;
    st.cap_micro = t.quota_burst * 1000000ull;
    st.tokens_micro = st.cap_micro;  // full bucket at t = 0
    st.priority = t.priority;
    tenants_.push_back(st);
  }
  tenant_tally_ = std::vector<Tally>(cfg_.tenants.size());
  model_tally_ = std::vector<Tally>(cfg_.models.size());
}

std::optional<serve::ResponseFuture> FleetEngine::route(const Send& s,
                                                        FleetResponse& rej) {
  if (s.tenant >= tenants_.size())
    throw std::invalid_argument("FleetEngine: tenant out of range");
  if (s.model >= engines_.size())
    throw std::invalid_argument("FleetEngine: model out of range");
  Tenant& t = tenants_[s.tenant];
  Model& m = models_[s.model];
  const std::uint32_t prio = static_cast<std::uint32_t>(t.priority);
  ++report_.requests;
  ++tenant_tally_[s.tenant].requests;
  ++model_tally_[s.model].requests;

  // Gate 1: tenant token bucket (integer micro-tokens).
  const std::uint64_t delta_us = s.send_us - t.last_refill_us;
  t.last_refill_us = s.send_us;
  t.tokens_micro = std::min(t.cap_micro, t.tokens_micro + delta_us * t.quota_rps);
  if (t.tokens_micro < 1000000ull) {
    rej = FleetResponse{};
    rej.id = s.id;
    rej.status = FleetStatus::kQuotaRejected;
    rej.finish_us = s.send_us;
    rtrace::record(rtrace::EventKind::kFleetQuota, s.send_us, s.id, 0, prio,
                   static_cast<std::int64_t>(s.tenant));
    tally(tenant_tally_[s.tenant], rej.status, false, false, 0);
    tally(model_tally_[s.model], rej.status, false, false, 0);
    ++report_.statuses[static_cast<std::size_t>(rej.status)];
    if (auto a = burn_.observe(s.send_us, false)) report_.slo_alerts.push_back(*a);
    return std::nullopt;
  }

  // Gate 2: weighted shedding on the projected model backlog.
  const std::uint64_t backlog_start = std::max(m.busy_until_us, s.send_us);
  const std::uint64_t projected_delay = backlog_start - s.send_us;
  if (projected_delay > cfg_.shed_budget_us[prio]) {
    rej = FleetResponse{};
    rej.id = s.id;
    rej.status = FleetStatus::kPriorityShed;
    rej.finish_us = s.send_us;
    rtrace::record(rtrace::EventKind::kFleetShed, s.send_us, s.id, 0, prio,
                   static_cast<std::int64_t>(s.model));
    tally(tenant_tally_[s.tenant], rej.status, false, false, 0);
    tally(model_tally_[s.model], rej.status, false, false, 0);
    ++report_.statuses[static_cast<std::size_t>(rej.status)];
    if (auto a = burn_.observe(s.send_us, false)) report_.slo_alerts.push_back(*a);
    return std::nullopt;
  }

  // Gate 3: admit into the model engine.
  t.tokens_micro -= 1000000ull;
  m.busy_until_us = backlog_start + m.cost_us;
  rtrace::record(rtrace::EventKind::kFleetRoute, s.send_us, s.id, 0, prio,
                 static_cast<std::int64_t>(s.model));
  serve::Request req;
  req.id = next_engine_id_++;
  req.arrival_us = s.send_us;
  req.deadline_us = s.send_us + s.deadline_rel_us;
  req.query = s.query;
  return engines_[s.model]->submit(req);
}

FleetResponse FleetEngine::complete(const Send& s, const serve::Response& r) {
  FleetResponse resp;
  resp.id = s.id;
  resp.status = static_cast<FleetStatus>(r.outcome);
  resp.predicted = r.predicted;
  resp.margin_micro = static_cast<std::int64_t>(std::llround(r.margin * 1e6));
  resp.dims_used = static_cast<std::uint32_t>(r.dims_used);
  resp.attempts = r.attempts;
  resp.finish_us = r.finish_us;
  resp.latency_us = r.latency_us;
  resp.version = r.version;
  resp.rung = r.rung;

  const bool served = r.outcome == serve::Outcome::kOk ||
                      r.outcome == serve::Outcome::kRetried ||
                      r.outcome == serve::Outcome::kDegraded;
  const bool correct =
      served && r.predicted == worlds_[s.model].labels[s.query];
  tally(tenant_tally_[s.tenant], resp.status, served, correct, r.latency_us);
  tally(model_tally_[s.model], resp.status, served, correct, r.latency_us);
  ++report_.statuses[static_cast<std::size_t>(resp.status)];
  report_.makespan_us = std::max(report_.makespan_us, r.finish_us);

  // Fleet-level burn: good == served within the model's latency SLO.
  const bool good =
      served && r.latency_us <= cfg_.models[s.model].serve.slo_us;
  if (auto a = burn_.observe(r.finish_us, good))
    report_.slo_alerts.push_back(*a);
  return resp;
}

void FleetEngine::tick_model(std::size_t m, std::uint64_t vt) {
  next_event_[m] = engines_[m]->tick(vt);
}

std::vector<std::uint32_t> FleetEngine::model_queries() const {
  std::vector<std::uint32_t> out;
  out.reserve(worlds_.size());
  for (const ModelWorld& w : worlds_)
    out.push_back(static_cast<std::uint32_t>(w.queries.size()));
  return out;
}

void FleetEngine::tally(Tally& t, FleetStatus s, bool served, bool correct,
                        std::uint64_t latency_us) {
  ++t.statuses[static_cast<std::size_t>(s)];
  if (served) {
    ++t.served;
    t.latency.record(latency_us);
    if (correct) ++t.correct;
  }
}

PartyStats FleetEngine::snapshot(const Tally& t) {
  PartyStats s;
  s.requests = t.requests;
  s.statuses = t.statuses;
  s.served = t.served;
  s.correct = t.correct;
  s.latency = t.latency.snapshot();
  return s;
}

FleetReport FleetEngine::finish() {
  if (finished_) throw std::logic_error("FleetEngine::finish called twice");
  finished_ = true;
  report_.config = cfg_;
  for (auto& e : engines_) report_.model_reports.push_back(e->finish());
  for (const Tally& t : tenant_tally_) report_.tenants.push_back(snapshot(t));
  for (const Tally& t : model_tally_) report_.models.push_back(snapshot(t));
  return report_;
}

// ---- generic.fleet.v1 -----------------------------------------------------

namespace {

/// Shortest lossless %.9g rendering, matching every other generic.*.v1
/// exporter so goldens stay byte-stable across platforms.
void append_double(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  out += buf;
}

}  // namespace

void append_party_json(std::string& out, const PartyStats& s,
                       const char* indent) {
  out += "{\"requests\": " + std::to_string(s.requests);
  out += ", \"statuses\": {";
  for (std::size_t i = 0; i < kNumFleetStatuses; ++i) {
    out += i == 0 ? "" : ", ";
    out += '"';
    out += fleet_status_name(static_cast<FleetStatus>(i));
    out += "\": " + std::to_string(s.statuses[i]);
  }
  out += "},\n";
  out += indent;
  out += " \"served\": " + std::to_string(s.served);
  out += ", \"correct\": " + std::to_string(s.correct);
  out += ", \"accuracy\": ";
  append_double(out, s.served == 0 ? 0.0
                                   : static_cast<double>(s.correct) /
                                         static_cast<double>(s.served));
  out += ", \"latency_us\": {\"count\": " + std::to_string(s.latency.count);
  out += ", \"p50\": " + std::to_string(s.latency.percentile(0.50));
  out += ", \"p95\": " + std::to_string(s.latency.percentile(0.95));
  out += ", \"p99\": " + std::to_string(s.latency.percentile(0.99));
  out += "}}";
}



std::string fleet_report_to_json(const FleetReport& rep) {
  std::string out;
  out.reserve(1 << 14);
  out += "{\n  \"schema\": \"generic.fleet.v1\",\n";

  out += "  \"config\": {\n";
  out += "    \"seed\": " + std::to_string(rep.config.seed) + ",\n";
  out += "    \"shed_budget_us\": {";
  for (std::size_t p = 0; p < kNumPriorities; ++p) {
    out += p == 0 ? "" : ", ";
    out += '"';
    out += priority_name(static_cast<PriorityClass>(p));
    out += "\": " + std::to_string(rep.config.shed_budget_us[p]);
  }
  out += "},\n";
  out += "    \"models\": [";
  for (std::size_t m = 0; m < rep.config.models.size(); ++m) {
    const ModelSpec& s = rep.config.models[m];
    out += m == 0 ? "\n" : ",\n";
    out += "      {\"id\": \"" + s.id + "\"";
    out += ", \"dims\": " + std::to_string(s.dims);
    out += ", \"classes\": " + std::to_string(s.classes);
    out += ", \"queries\": " + std::to_string(s.queries);
    out += ", \"servers\": " + std::to_string(s.serve.servers);
    out += ", \"service_base_us\": " + std::to_string(s.serve.service_base_us);
    out += ", \"deadline_us\": " + std::to_string(s.serve.deadline_us);
    out += ", \"slo_us\": " + std::to_string(s.serve.slo_us);
    out += "}";
  }
  out += rep.config.models.empty() ? "],\n" : "\n    ],\n";
  out += "    \"tenants\": [";
  for (std::size_t t = 0; t < rep.config.tenants.size(); ++t) {
    const TenantSpec& s = rep.config.tenants[t];
    out += t == 0 ? "\n" : ",\n";
    out += "      {\"name\": \"" + s.name + "\"";
    out += ", \"priority\": \"";
    out += priority_name(s.priority);
    out += "\", \"quota_rps\": " + std::to_string(s.quota_rps);
    out += ", \"quota_burst\": " + std::to_string(s.quota_burst);
    out += ", \"clients\": " + std::to_string(s.clients);
    out += ", \"think_mean_us\": " + std::to_string(s.think_mean_us);
    out += ", \"requests_per_client\": " +
           std::to_string(s.requests_per_client);
    out += ", \"model_pin\": " + std::to_string(s.model_pin);
    out += "}";
  }
  out += rep.config.tenants.empty() ? "]\n" : "\n    ]\n";
  out += "  },\n";

  out += "  \"requests\": " + std::to_string(rep.requests) + ",\n";
  out += "  \"makespan_us\": " + std::to_string(rep.makespan_us) + ",\n";
  out += "  \"statuses\": {";
  for (std::size_t i = 0; i < kNumFleetStatuses; ++i) {
    out += i == 0 ? "" : ", ";
    out += '"';
    out += fleet_status_name(static_cast<FleetStatus>(i));
    out += "\": " + std::to_string(rep.statuses[i]);
  }
  out += "},\n";

  out += "  \"tenants\": [";
  for (std::size_t t = 0; t < rep.tenants.size(); ++t) {
    out += t == 0 ? "\n" : ",\n";
    out += "    {\"name\": \"" + rep.config.tenants[t].name + "\", \"stats\": ";
    append_party_json(out, rep.tenants[t], "    ");
    out += "}";
  }
  out += rep.tenants.empty() ? "],\n" : "\n  ],\n";

  out += "  \"models\": [";
  for (std::size_t m = 0; m < rep.models.size(); ++m) {
    out += m == 0 ? "\n" : ",\n";
    out += "    {\"id\": \"" + rep.config.models[m].id + "\", \"stats\": ";
    append_party_json(out, rep.models[m], "    ");
    if (m < rep.model_reports.size()) {
      const serve::ServeReport& sr = rep.model_reports[m];
      out += ",\n     \"engine\": {\"requests\": " +
             std::to_string(sr.requests);
      out += ", \"served\": " + std::to_string(sr.served);
      out += ", \"correct\": " + std::to_string(sr.correct);
      out += ", \"attempts\": " + std::to_string(sr.attempts);
      out += ", \"retries\": " + std::to_string(sr.retries);
      out += ", \"steps_down\": " + std::to_string(sr.steps_down);
      out += ", \"steps_up\": " + std::to_string(sr.steps_up);
      out += ", \"final_rung\": " + std::to_string(sr.final_rung);
      out += ", \"makespan_us\": " + std::to_string(sr.makespan_us);
      out += "}";
    }
    out += "}";
  }
  out += rep.models.empty() ? "],\n" : "\n  ],\n";

  out += "  \"slo_alerts\": [";
  for (std::size_t i = 0; i < rep.slo_alerts.size(); ++i) {
    const serve::BurnAlert& a = rep.slo_alerts[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"vt_us\": " + std::to_string(a.vt);
    out += ", \"kind\": \"";
    out += a.fired ? "fire" : "clear";
    out += "\", \"fast_burn\": ";
    append_double(out, a.fast_burn);
    out += ", \"slow_burn\": ";
    append_double(out, a.slow_burn);
    out += "}";
  }
  out += rep.slo_alerts.empty() ? "]\n" : "\n  ]\n";

  out += "}\n";
  return out;
}

void write_fleet_json(const std::string& path, const FleetReport& report) {
  std::ofstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("write_fleet_json: cannot open " + path);
  f << fleet_report_to_json(report);
}

}  // namespace generic::fleet
