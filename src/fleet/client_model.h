// Deterministic closed-loop client trace model (docs/fleet.md).
//
// Each ClientModel is one tenant's client in the closed loop: it keeps at
// most ONE request outstanding, and produces its next send a think time
// after the previous response's virtual finish. Every draw (first think,
// per-request model choice, query choice, think times) comes from a per-
// client Rng seeded from (fleet seed, tenant, client) with a FROZEN draw
// order — so the same config produces the same trace whether the client
// runs inside the simulator or inside a real generic_fleet_client process
// talking over a socket. That shared trace is the determinism contract
// that lets CI compare the two ingress paths byte-for-byte.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/rng.h"
#include "fleet/types.h"

namespace generic::fleet {

class ClientModel {
 public:
  /// `model_queries[m]` is model m's servable query-set size (the HELLO_ACK
  /// payload on the socket path).
  ClientModel(const FleetConfig& cfg, std::uint16_t tenant,
              std::uint16_t client, std::vector<std::uint32_t> model_queries);

  /// The client's first send (nullopt when requests_per_client == 0).
  std::optional<Send> start();

  /// Deliver the response of the outstanding request; returns the next
  /// send, or nullopt when this client is done.
  std::optional<Send> on_response(const FleetResponse& resp);

 private:
  Send make_send(std::uint64_t send_us);
  std::uint64_t think();

  std::uint16_t tenant_;
  std::uint16_t client_;
  PriorityClass priority_;
  int model_pin_;
  std::uint64_t think_mean_us_;
  std::size_t remaining_;
  std::size_t num_models_;
  std::vector<std::uint32_t> model_queries_;
  std::vector<std::uint64_t> model_deadline_us_;
  std::uint64_t next_id_ = 0;
  Rng rng_;
};

}  // namespace generic::fleet
