// Vocabulary of the multi-model, multi-tenant serving fleet (docs/fleet.md).
//
// Like the serving layer underneath, fleet time is VIRTUAL: every send,
// admission verdict, shed, and completion is stamped in microseconds on the
// seeded trace clock, never the wall clock. The fleet adds two layers of
// identity on top of serve::Request: the TENANT (who pays — admission
// quotas and priority class) and the MODEL (which per-model ServeEngine
// serves it). Every decision is a pure function of (FleetConfig, seed), so
// the generic.fleet.v1 report is byte-identical for any --threads value and
// kernel backend, and the real-socket ingress replays the same schedule.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "serve/types.h"

namespace generic::fleet {

/// Priority classes, strongest first. Under overload the fleet sheds
/// weakest-first: each class tolerates a different projected model backlog
/// (FleetConfig::shed_budget_us) before its requests are turned away.
enum class PriorityClass : std::uint8_t {
  kCritical = 0,
  kStandard = 1,
  kBatch = 2,
};

inline constexpr std::size_t kNumPriorities = 3;

/// Stable short name ("critical", "standard", "batch").
std::string_view priority_name(PriorityClass p);

/// Terminal status of one fleet request: the six serve::Outcome values
/// (same numeric codes) plus the fleet's own admission verdicts.
enum class FleetStatus : std::uint8_t {
  kOk = 0,
  kRetried = 1,
  kDegraded = 2,
  kShed = 3,      ///< shed by the model engine's own high-water mark
  kTimeout = 4,
  kFailed = 5,
  kQuotaRejected = 6,  ///< tenant token bucket empty at send
  kPriorityShed = 7,   ///< projected backlog over the class's shed budget
};

inline constexpr std::size_t kNumFleetStatuses = 8;

/// Stable short name ("ok", ..., "quota_rejected", "priority_shed").
std::string_view fleet_status_name(FleetStatus s);

/// One tenant: a priority class, an admission quota, and a closed-loop
/// client population. Quotas are exact integer token buckets: the bucket
/// holds micro-tokens (1e6 per request, capped at quota_burst requests)
/// and refills at exactly quota_rps micro-tokens per virtual microsecond —
/// all-integer math, so the verdict stream is exactly reproducible.
struct TenantSpec {
  std::string name;
  PriorityClass priority = PriorityClass::kStandard;
  std::uint64_t quota_rps = 1000;  ///< sustained admissions per virtual second
  std::uint64_t quota_burst = 16;  ///< bucket capacity, in requests
  std::size_t clients = 4;         ///< closed-loop client population
  std::uint64_t think_mean_us = 2000;  ///< mean exponential think time
  std::size_t requests_per_client = 50;
  int model_pin = -1;  ///< >= 0: every request targets that model;
                       ///< -1: per-request seeded choice over all models
};

/// One model in the fleet: a synthetic world (seeded drift-stream dataset,
/// encoder, classifier) plus the ServeConfig of its dedicated ServeEngine.
/// `id` labels the engine's registry metrics and the report.
struct ModelSpec {
  std::string id;
  std::size_t dims = 1024;
  std::size_t classes = 6;
  std::size_t features = 64;
  std::size_t train_samples = 600;
  std::size_t queries = 200;  ///< servable query-set size
  std::size_t epochs = 3;
  std::uint64_t world_seed = 0xD21F7;
  serve::ServeConfig serve;
};

struct FleetConfig {
  std::vector<ModelSpec> models;
  std::vector<TenantSpec> tenants;
  /// Per-priority-class weighted-shedding budget: a request is shed when
  /// its model's projected backlog delay exceeds its class's budget, so
  /// batch traffic sheds ~16x earlier than critical traffic.
  std::array<std::uint64_t, kNumPriorities> shed_budget_us{64000, 16000,
                                                           4000};
  std::uint64_t seed = 0xF1EE7;
};

/// The reference three-model / three-tenant topology used by the tool
/// defaults, the golden fixture, and CI. `quick` shrinks dims/volumes for
/// test-speed runs.
FleetConfig default_fleet_config(bool quick);

/// One closed-loop client send on the virtual timeline.
struct Send {
  std::uint64_t send_us = 0;
  std::uint16_t tenant = 0;
  std::uint16_t client = 0;  ///< ordinal within the tenant (tie-break id)
  std::uint16_t model = 0;
  std::uint64_t id = 0;      ///< client-side request ordinal (echoed back)
  std::uint32_t query = 0;
  std::uint64_t deadline_rel_us = 0;
};

/// Terminal answer delivered back to the sending client.
struct FleetResponse {
  std::uint64_t id = 0;  ///< echo of Send::id
  FleetStatus status = FleetStatus::kFailed;
  int predicted = -1;
  std::int64_t margin_micro = 0;  ///< winning margin, fixed-point 1e-6
  std::uint32_t dims_used = 0;
  std::uint32_t attempts = 0;
  std::uint64_t finish_us = 0;
  std::uint64_t latency_us = 0;
  std::uint64_t version = 0;
  std::uint32_t rung = 0;
};

}  // namespace generic::fleet
