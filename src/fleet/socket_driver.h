// Socket-backed ClientPorts: the bridge between net::Server and the fleet
// coordinator (docs/fleet.md).
//
// Each expected closed-loop client — identified by its (tenant, client)
// HELLO — maps to one SocketClientPort. start() hands the coordinator the
// client's first buffered request; on_response() writes the response frame
// and then BLOCKS pumping the server until that connection's next request
// (or BYE) arrives. Because every client keeps at most one request
// outstanding and computes its own virtual send times, holding the
// coordinator at each delivery until the client's next frame arrives makes
// the socket run replay the exact discrete-event schedule of the simulated
// run — same admissions, same sheds, same generic.fleet.v1 bytes.
//
// Wall-clock waits here only bound how long we tolerate a silent peer;
// they never influence a serving decision. A timeout or early disconnect
// marks the driver failed (ok() == false) and finishes that client's loop.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "fleet/simulator.h"
#include "fleet/types.h"
#include "net/server.h"

namespace generic::fleet {

class SocketFleetDriver {
 public:
  /// `server` must outlive the driver. Expected population is read from
  /// cfg.tenants[*].clients.
  SocketFleetDriver(net::Server& server, const FleetConfig& cfg,
                    int io_timeout_ms = 30000);
  ~SocketFleetDriver();  // out of line: Port is incomplete here

  /// Pump until every expected client has connected, HELLO'd and sent its
  /// first request (closed-loop start barrier). False on timeout.
  bool wait_ready(int timeout_ms);

  /// Ports in (tenant-major, client) order — valid after wait_ready().
  std::vector<ClientPort*> ports();

  /// False once any peer timed out, violated the protocol, or vanished
  /// mid-loop; the fleet report of a failed run is not comparable.
  bool ok() const { return ok_; }

 private:
  struct PortState {
    std::uint16_t tenant = 0;
    std::uint16_t client = 0;
    std::uint64_t conn = 0;
    bool connected = false;
    bool closed = false;
    std::deque<Send> inbox;  ///< validated requests not yet consumed
  };

  class Port;

  void dispatch(const net::ServerEvent& ev);
  /// Pump the server until `state` has an inboxed send or closed.
  std::optional<Send> pull(PortState& state);

  net::Server& server_;
  FleetConfig cfg_;
  int io_timeout_ms_;
  bool ok_ = true;
  std::vector<PortState> states_;               ///< (tenant, client) order
  std::vector<std::unique_ptr<Port>> ports_;
  std::map<std::uint64_t, std::size_t> by_conn_;  ///< conn id -> state index
};

}  // namespace generic::fleet
