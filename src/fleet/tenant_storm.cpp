#include "fleet/tenant_storm.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <stdexcept>

#include "common/thread_pool.h"
#include "fleet/simulator.h"

namespace generic::fleet {

FleetConfig tenant_storm_config(bool quick) {
  FleetConfig cfg = default_fleet_config(quick);
  // Turn the batch tenant into the storm: a dense client population with
  // tiny think times, all pinned on the fastest model. Offered load is
  // ~6 clients / ~250us ≈ 24000 rps — over 10x the 1000 rps quota. The
  // burst capacity (32 requests) is sized to blow straight past the
  // pinned model's 4 ms batch shed budget (~11 requests of projected
  // backlog), so the OPENING burst is absorbed by the weighted-shed gate,
  // and the SUSTAINED flood is capped by the token bucket once the burst
  // allowance is spent — both refusal mechanisms must visibly engage
  // while critical traffic rides its 64 ms budget untouched.
  TenantSpec& flood = cfg.tenants.back();
  flood.quota_rps = 1000;
  flood.quota_burst = 32;
  flood.clients = 6;
  flood.think_mean_us = 250;
  flood.requests_per_client = quick ? 80 : 200;
  flood.model_pin = 0;
  return cfg;
}

namespace {

double served_frac(const PartyStats& s) {
  return s.requests == 0 ? 1.0
                         : static_cast<double>(s.served) /
                               static_cast<double>(s.requests);
}

double accuracy(const PartyStats& s) {
  return s.served == 0 ? 0.0
                       : static_cast<double>(s.correct) /
                             static_cast<double>(s.served);
}

StormInvariant check_ge(const std::string& name, double value, double bound) {
  StormInvariant inv;
  inv.name = name;
  inv.enabled = true;
  inv.value = value;
  inv.bound = bound;
  inv.passed = value >= bound;
  return inv;
}

StormInvariant check_le(const std::string& name, double value, double bound) {
  StormInvariant inv;
  inv.name = name;
  inv.enabled = true;
  inv.value = value;
  inv.bound = bound;
  inv.passed = value <= bound;
  return inv;
}

}  // namespace

StormReport run_tenant_storm(bool quick, std::uint64_t seed,
                             std::size_t threads) {
  FleetConfig cfg = tenant_storm_config(quick);
  cfg.seed = seed;

  ThreadPool pool(threads);
  std::vector<ModelWorld> worlds;
  worlds.reserve(cfg.models.size());
  for (const ModelSpec& m : cfg.models) worlds.push_back(build_world(m, pool));

  FleetEngine fleet(cfg, std::move(worlds), pool);
  auto owned = make_sim_ports(cfg, fleet);
  std::vector<ClientPort*> ports;
  ports.reserve(owned.size());
  for (auto& p : owned) ports.push_back(p.get());
  run_closed_loop(fleet, ports);

  StormReport rep;
  rep.seed = seed;
  rep.quick = quick;
  rep.flood_tenant = cfg.tenants.size() - 1;
  rep.fleet = fleet.finish();

  // The storm is refused: the flood tenant's quota + weighted-shed refusal
  // fraction must dominate its request stream.
  const PartyStats& flood = rep.fleet.tenants[rep.flood_tenant];
  const double quota_frac =
      flood.requests == 0
          ? 0.0
          : static_cast<double>(flood.statuses[static_cast<std::size_t>(
                FleetStatus::kQuotaRejected)]) /
                static_cast<double>(flood.requests);
  const double shed_frac =
      flood.requests == 0
          ? 0.0
          : static_cast<double>(flood.statuses[static_cast<std::size_t>(
                FleetStatus::kPriorityShed)]) /
                static_cast<double>(flood.requests);
  rep.invariants.push_back(
      check_ge("flood_refused_frac", quota_frac + shed_frac, 0.60));
  // BOTH refusal mechanisms must engage: the token bucket caps the
  // sustained rate, and the weighted shed gate absorbs what leaks past it.
  rep.invariants.push_back(check_ge("flood_shed_frac", shed_frac, 0.10));

  // The victims are protected: every non-flood tenant keeps serving and
  // keeps answering correctly.
  double victim_served = 1.0;
  double victim_accuracy = 1.0;
  for (std::size_t t = 0; t < rep.fleet.tenants.size(); ++t) {
    if (t == rep.flood_tenant) continue;
    victim_served = std::min(victim_served, served_frac(rep.fleet.tenants[t]));
    victim_accuracy =
        std::min(victim_accuracy, accuracy(rep.fleet.tenants[t]));
  }
  rep.invariants.push_back(
      check_ge("victim_served_frac", victim_served, 0.90));
  rep.invariants.push_back(
      check_ge("victim_accuracy", victim_accuracy, 0.60));

  // The critical tenant's tail latency stays flat: priority budgets keep
  // the storm's backlog from ever reaching gold's admitted requests.
  const PartyStats& gold = rep.fleet.tenants[0];
  rep.invariants.push_back(check_le(
      "critical_p99_us", static_cast<double>(gold.latency.percentile(0.99)),
      static_cast<double>(cfg.models[0].serve.deadline_us * 2)));

  rep.passed = true;
  for (const StormInvariant& inv : rep.invariants)
    rep.passed = rep.passed && (!inv.enabled || inv.passed);
  return rep;
}

// ---- generic.chaos.v1 (scenario tenant_storm) -----------------------------

namespace {

void append_double(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  out += buf;
}

}  // namespace

std::string storm_report_to_json(const StormReport& rep) {
  std::string out;
  out.reserve(1 << 13);
  out += "{\n  \"schema\": \"generic.chaos.v1\",\n";
  out += "  \"scenario\": \"tenant_storm\",\n";
  out += "  \"seed\": " + std::to_string(rep.seed) + ",\n";
  out += "  \"quick\": ";
  out += rep.quick ? "true" : "false";
  out += ",\n";
  out += "  \"flood_tenant\": \"" +
         rep.fleet.config.tenants[rep.flood_tenant].name + "\",\n";
  out += "  \"requests\": " + std::to_string(rep.fleet.requests) + ",\n";
  out += "  \"makespan_us\": " + std::to_string(rep.fleet.makespan_us) + ",\n";

  out += "  \"statuses\": {";
  for (std::size_t i = 0; i < kNumFleetStatuses; ++i) {
    out += i == 0 ? "" : ", ";
    out += '"';
    out += fleet_status_name(static_cast<FleetStatus>(i));
    out += "\": " + std::to_string(rep.fleet.statuses[i]);
  }
  out += "},\n";

  out += "  \"tenants\": [";
  for (std::size_t t = 0; t < rep.fleet.tenants.size(); ++t) {
    out += t == 0 ? "\n" : ",\n";
    out += "    {\"name\": \"" + rep.fleet.config.tenants[t].name +
           "\", \"priority\": \"";
    out += priority_name(rep.fleet.config.tenants[t].priority);
    out += "\", \"stats\": ";
    append_party_json(out, rep.fleet.tenants[t], "    ");
    out += "}";
  }
  out += rep.fleet.tenants.empty() ? "],\n" : "\n  ],\n";

  out += "  \"invariants\": [";
  for (std::size_t i = 0; i < rep.invariants.size(); ++i) {
    const StormInvariant& inv = rep.invariants[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"name\": \"" + inv.name + "\"";
    out += ", \"enabled\": ";
    out += inv.enabled ? "true" : "false";
    out += ", \"passed\": ";
    out += inv.passed ? "true" : "false";
    out += ", \"value\": ";
    append_double(out, inv.value);
    out += ", \"bound\": ";
    append_double(out, inv.bound);
    out += "}";
  }
  out += rep.invariants.empty() ? "],\n" : "\n  ],\n";

  out += "  \"passed\": ";
  out += rep.passed ? "true" : "false";
  out += "\n}\n";
  return out;
}

void write_storm_json(const std::string& path, const StormReport& report) {
  std::ofstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("write_storm_json: cannot open " + path);
  f << storm_report_to_json(report);
}

}  // namespace generic::fleet
