#include "fleet/client_model.h"

#include <cmath>
#include <stdexcept>

namespace generic::fleet {

namespace {

/// Client stream seed: golden-ratio mix of (fleet seed, tenant, client) so
/// every client draws an independent stream whose identity is stable under
/// topology edits to OTHER tenants.
std::uint64_t client_seed(std::uint64_t seed, std::uint16_t tenant,
                          std::uint16_t client) {
  std::uint64_t s = seed;
  s ^= 0x9E3779B97F4A7C15ULL * (static_cast<std::uint64_t>(tenant) + 1);
  s ^= 0xC2B2AE3D27D4EB4FULL * (static_cast<std::uint64_t>(client) + 1);
  return s;
}

}  // namespace

ClientModel::ClientModel(const FleetConfig& cfg, std::uint16_t tenant,
                         std::uint16_t client,
                         std::vector<std::uint32_t> model_queries)
    : tenant_(tenant),
      client_(client),
      priority_(cfg.tenants.at(tenant).priority),
      model_pin_(cfg.tenants.at(tenant).model_pin),
      think_mean_us_(cfg.tenants.at(tenant).think_mean_us),
      remaining_(cfg.tenants.at(tenant).requests_per_client),
      num_models_(cfg.models.size()),
      model_queries_(std::move(model_queries)),
      rng_(client_seed(cfg.seed, tenant, client)) {
  if (model_queries_.size() != num_models_)
    throw std::invalid_argument("ClientModel: model_queries size mismatch");
  model_deadline_us_.reserve(num_models_);
  for (const ModelSpec& m : cfg.models)
    model_deadline_us_.push_back(m.serve.deadline_us);
}

std::uint64_t ClientModel::think() {
  // Exponential think time, same draw shape as the serve tool's Poisson
  // trace: -ln(1-u) * mean, floored at 1us so time always advances.
  const double u = rng_.uniform();
  const double t = -std::log(1.0 - u) * static_cast<double>(think_mean_us_);
  return std::max<std::uint64_t>(1, static_cast<std::uint64_t>(t));
}

Send ClientModel::make_send(std::uint64_t send_us) {
  // Frozen draw order: model choice, then query choice. model_pin skips
  // the model draw entirely (it must not perturb the query stream of a
  // pinned tenant when other tenants change).
  Send s;
  s.send_us = send_us;
  s.tenant = tenant_;
  s.client = client_;
  s.model = model_pin_ >= 0
                ? static_cast<std::uint16_t>(model_pin_)
                : static_cast<std::uint16_t>(rng_.below(num_models_));
  s.query = static_cast<std::uint32_t>(rng_.below(model_queries_[s.model]));
  s.deadline_rel_us = model_deadline_us_[s.model];
  s.id = next_id_++;
  return s;
}

std::optional<Send> ClientModel::start() {
  if (remaining_ == 0) return std::nullopt;
  --remaining_;
  return make_send(think());  // staggered start: one think before first send
}

std::optional<Send> ClientModel::on_response(const FleetResponse& resp) {
  if (remaining_ == 0) return std::nullopt;
  --remaining_;
  return make_send(resp.finish_us + think());
}

}  // namespace generic::fleet
