#include "chaos/scenario.h"

namespace generic::chaos {
namespace {

/// Shared sizing: the engine's two 900 us service lanes saturate around
/// 2200 rps at full dimensions, ~4x that at the ladder floor (dims / 4).
/// Scenario rates are chosen against that capacity line.
ScenarioSpec base(bool quick) {
  ScenarioSpec s;
  s.requests = quick ? 1500 : 4000;
  s.dims = quick ? 512 : 1024;
  s.train_samples = quick ? 600 : 1200;
  s.canary_every = 2;
  return s;
}

ScenarioSpec diurnal(bool quick) {
  ScenarioSpec s = base(quick);
  s.name = "diurnal";
  s.description =
      "day/night sine whose crest crosses the capacity line; the "
      "degradation ladder must absorb the peak with bounded shedding";
  s.load.kind = LoadKind::kDiurnal;
  s.load.low_rps = 600.0;
  s.load.high_rps = 2600.0;
  s.load.period_us = quick ? 500'000 : 1'000'000;
  s.invariants.max_shed_frac = 0.10;
  s.invariants.min_canary_accuracy = 0.60;
  return s;
}

ScenarioSpec flash_crowd(bool quick) {
  ScenarioSpec s = base(quick);
  s.name = "flash_crowd";
  s.description =
      "6x single-class burst on a relaxed baseline; admission control "
      "sheds the overflow and the per-class replay quota keeps the flood "
      "from owning the canary replay buffer";
  s.load.kind = LoadKind::kFlash;
  s.load.base_rps = 900.0;
  s.load.flash_start_us = quick ? 300'000 : 800'000;
  s.load.flash_len_us = quick ? 250'000 : 500'000;
  s.load.flash_mult = 6.0;
  s.flash_single_class = true;
  s.flash_class = 2;
  s.replay_class_cap = 32;
  s.invariants.max_shed_frac = 0.45;
  s.invariants.min_canary_accuracy = 0.55;
  return s;
}

ScenarioSpec bank_faults(bool quick) {
  ScenarioSpec s = base(quick);
  s.name = "bank_faults";
  s.description =
      "a correlated class-memory bank burst corrupts the serving model "
      "mid-run; drift detection must notice the collapse and a clean "
      "retrain must hot-swap the damage away";
  s.load.kind = LoadKind::kPoisson;
  s.load.base_rps = 1200.0;
  FaultBurst burst;
  burst.vt_us = quick ? 400'000 : 1'000'000;
  burst.fault.kind = resilience::FaultKind::kBankCorrelated;
  burst.fault.rate = 0.5;
  burst.fault.burst_rate = 0.05;
  s.bursts.push_back(burst);
  s.min_fresh = quick ? 100 : 160;
  s.invariants.max_shed_frac = 0.05;
  s.invariants.min_swaps = 1;
  s.invariants.recovery_window_us = quick ? 400'000 : 800'000;
  s.invariants.recovery_accuracy = 0.60;
  return s;
}

ScenarioSpec drift_under_overload(bool quick) {
  ScenarioSpec s = base(quick);
  s.name = "drift_under_overload";
  s.description =
      "concept shift while demand exceeds capacity: the ladder defends "
      "the SLO, shedding stays bounded, and the lifecycle still closes "
      "its drift -> retrain -> validate -> swap loop";
  s.load.kind = LoadKind::kPoisson;
  s.load.base_rps = 2600.0;
  s.drift_enabled = true;
  s.shift_at = s.requests * 2 / 5;
  s.severity = 0.75;
  s.min_fresh = quick ? 100 : 160;
  s.invariants.max_shed_frac = 0.35;
  s.invariants.min_swaps = 1;
  s.invariants.recovery_window_us = quick ? 200'000 : 400'000;
  s.invariants.recovery_accuracy = 0.55;
  return s;
}

ScenarioSpec corrupt_checkpoint_boot(bool quick) {
  ScenarioSpec s = base(quick);
  s.name = "corrupt_checkpoint_boot";
  s.description =
      "the newest on-disk checkpoint is garbage at boot; the store must "
      "quarantine it, fall back to the older known-good version, and "
      "serving must proceed normally from it";
  s.requests = quick ? 1000 : 2500;
  s.load.kind = LoadKind::kPoisson;
  s.load.base_rps = 1000.0;
  s.corrupt_boot = true;
  s.invariants.max_shed_frac = 0.05;
  s.invariants.min_canary_accuracy = 0.60;
  s.invariants.expect_quarantine = true;
  return s;
}

ScenarioSpec encoder_corruption(bool quick) {
  ScenarioSpec s = base(quick);
  s.name = "encoder_corruption";
  s.description =
      "a burst corrupts level rows and the id seed of the encoder memory "
      "mid-run; the guard masks around the damage at the next scrub tick "
      "and the seed-rematerialization scrub must restore the clean "
      "encodings bit-identically, with accuracy recovering in full";
  s.load.kind = LoadKind::kPoisson;
  s.load.base_rps = 1200.0;
  FaultBurst burst;
  burst.vt_us = quick ? 400'000 : 1'000'000;
  burst.fault.kind = resilience::FaultKind::kTransient;
  burst.fault.rate = 0.35;        // per-row hit probability
  burst.fault.burst_rate = 0.30;  // per-bit flip rate inside a hit row
  s.encoder_bursts.push_back(burst);
  s.scrub_every_us = quick ? 150'000 : 300'000;
  s.encoder_repair = resilience::RepairPolicy::kScrub;
  s.invariants.max_shed_frac = 0.05;
  s.invariants.min_scrubbed_rows = 1;
  s.invariants.masked_accuracy_below = 0.85;
  s.invariants.encoder_recovery_window_us = quick ? 400'000 : 800'000;
  s.invariants.encoder_recovery_accuracy = 0.60;
  return s;
}

ScenarioSpec multi_burst(bool quick) {
  ScenarioSpec s = base(quick);
  s.name = "multi_burst";
  s.description =
      "repeated class-memory AND encoder-memory bursts on a schedule; the "
      "retrain loop must heal the class damage and the scrub loop the "
      "encoder damage, every time";
  s.requests = quick ? 2000 : 4500;
  s.load.kind = LoadKind::kPoisson;
  s.load.base_rps = 1200.0;
  FaultBurst bank1;
  bank1.vt_us = quick ? 250'000 : 600'000;
  bank1.fault.kind = resilience::FaultKind::kBankCorrelated;
  bank1.fault.rate = 0.5;
  bank1.fault.burst_rate = 0.05;
  FaultBurst bank2 = bank1;
  bank2.vt_us = quick ? 800'000 : 2'000'000;
  s.bursts = {bank1, bank2};
  FaultBurst enc1;
  enc1.vt_us = quick ? 400'000 : 1'000'000;
  enc1.fault.kind = resilience::FaultKind::kTransient;
  enc1.fault.rate = 0.3;
  enc1.fault.burst_rate = 0.25;
  FaultBurst enc2 = enc1;
  enc2.vt_us = quick ? 900'000 : 2'200'000;
  s.encoder_bursts = {enc1, enc2};
  s.scrub_every_us = quick ? 150'000 : 300'000;
  s.encoder_repair = resilience::RepairPolicy::kScrub;
  s.min_fresh = quick ? 100 : 160;
  s.invariants.max_shed_frac = 0.05;
  s.invariants.min_swaps = 1;
  s.invariants.min_scrubbed_rows = 1;
  s.invariants.encoder_recovery_window_us = quick ? 300'000 : 600'000;
  s.invariants.encoder_recovery_accuracy = 0.55;
  return s;
}

ScenarioSpec shadow_fault_under_load(bool quick) {
  ScenarioSpec s = base(quick);
  s.name = "shadow_fault_under_load";
  s.description =
      "concept shift under sustained load while every retrained shadow is "
      "corrupted before validation; the holdout gate must reject the "
      "faulty shadows and roll back instead of installing garbage";
  s.load.kind = LoadKind::kPoisson;
  s.load.base_rps = 2000.0;
  s.drift_enabled = true;
  s.shift_at = s.requests * 2 / 5;
  s.severity = 0.75;
  s.shadow_fault_rate = 0.25;
  s.min_fresh = quick ? 100 : 160;
  s.invariants.max_shed_frac = 0.35;
  s.invariants.min_rollbacks = 1;
  return s;
}

}  // namespace

std::vector<ScenarioSpec> all_scenarios(bool quick) {
  return {diurnal(quick),
          flash_crowd(quick),
          bank_faults(quick),
          drift_under_overload(quick),
          corrupt_checkpoint_boot(quick),
          encoder_corruption(quick),
          multi_burst(quick),
          shadow_fault_under_load(quick)};
}

std::optional<ScenarioSpec> find_scenario(const std::string& name,
                                          bool quick) {
  for (auto& s : all_scenarios(quick))
    if (s.name == name) return s;
  return std::nullopt;
}

}  // namespace generic::chaos
