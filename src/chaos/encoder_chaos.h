// Encoder-memory incident scripting for chaos campaigns (docs/chaos.md).
//
// The serve engine never sees the encoder — it serves pre-encoded query
// tables through the EncoderMemory seam (serve/encoder_hook.h). This module
// is the concrete producer behind that seam: it owns a real GenericEncoder
// plus a commissioned resilience::EncoderGuard and plays a scenario's
// encoder fault bursts through them BEFORE the engine starts, precomputing
// the full corrupt -> detect/mask -> scrub timeline as ScriptedEncoderFaults
// entries:
//
//   burst.vt          kCorrupt  table re-encoded through the damaged rows;
//                               the engine serves garbage until detection.
//   T1 = next scrub   kDetect   (policy kDetect) scan counts the damage,
//        tick after             serving stays on the corrupt table; or
//        burst.vt     kMask     (policies kMask / kScrub) table re-encoded
//                               around the flagged rows via encode_masked —
//                               degraded but no longer poisoned. With no
//                               generation seed to scrub from the entry also
//                               steps the serve dims ladder one rung down
//                               (graceful degradation, ISSUE 9).
//   T2 = T1 + tick    kScrub    (policy kScrub, seed available) the guard
//                               rematerializes every faulty row from its
//                               seed, verifies the commissioned CRCs, and
//                               the table swaps back to the clean encodings
//                               — bit-identical to the pre-burst table.
//
// After a verified scrub the encoder is pristine again, so repeated bursts
// (the multi_burst scenario) compose naturally. Everything is precomputed
// from (spec, seed): the resulting timeline is a pure value and the chaos
// report stays byte-identical across --threads and kernel backends.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "chaos/scenario.h"
#include "common/thread_pool.h"
#include "encoding/encoders.h"
#include "resilience/encoder_guard.h"
#include "serve/encoder_hook.h"

namespace generic::chaos {

/// Everything script_encoder_incident needs beyond the encoder itself.
struct EncoderIncidentSpec {
  /// Encoder-targeted bursts: fault.rate is the per-row hit probability
  /// (levels + the id seed row), fault.burst_rate the per-bit rate inside a
  /// hit row, fault.kind the corruption model (kDeadBlock = whole row dead).
  std::vector<FaultBurst> bursts;
  std::uint64_t scrub_every_us = 100000;  ///< detect/scrub tick period
  resilience::RepairPolicy policy = resilience::RepairPolicy::kScrub;
  /// false models a deployment whose generation seeds stayed at the
  /// factory: the timeline masks and steps the ladder instead of scrubbing.
  bool seed_available = true;
  std::uint64_t seed = 0;  ///< rng root for the per-burst fault draws
};

/// Play `spec.bursts` through `encoder` (stored-mode level memory required
/// when any burst can hit level rows) and return the full precomputed
/// timeline. `samples` are the raw query features; `clean` must be their
/// encodings through the pristine encoder (the scrub target — the kScrub
/// entry's table is re-encoded and verified equal to it). The encoder is
/// left in its post-script state: pristine under kScrub with seeds, damaged
/// otherwise. Throws std::runtime_error if a scrub fails to restore the
/// clean encodings bit-identically.
std::vector<serve::ScriptedEncoderFaults::Entry> script_encoder_incident(
    enc::GenericEncoder& encoder, std::span<const std::vector<float>> samples,
    std::span<const hdc::IntHV> clean, const EncoderIncidentSpec& spec,
    ThreadPool& pool);

}  // namespace generic::chaos
