// Chaos campaign orchestrator (docs/chaos.md).
//
// run_scenario() assembles one complete edge-serving deployment — seeded
// drift stream, encoder, initial classifier, lifecycle::Manager (optionally
// booted from a CheckpointStore), ChaosHook, serve::ServeEngine — drives it
// through the scenario's failure timeline, and distills the run into one
// generic.chaos.v1 report: boot record, fired bursts, serve and lifecycle
// summaries, windowed timelines, and a verdict per invariant.
//
// Determinism contract: the report is a pure function of (spec, seed) —
// byte-identical across RunOptions::threads and independent of work_dir
// (paths never appear in the report). That is what lets the golden fixtures
// under tests/chaos/golden/ pin every scenario end to end.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "chaos/chaos_hook.h"
#include "chaos/scenario.h"
#include "lifecycle/manager.h"
#include "obs/rtrace.h"
#include "serve/engine.h"

namespace generic::chaos {

struct RunOptions {
  std::uint64_t seed = 0xC4A05;
  std::size_t threads = 0;  ///< worker lanes (0 = hardware); report-invariant
  /// Scratch directory for scenarios that need a checkpoint store. Created
  /// (and wiped) by the run; empty = a per-(scenario, seed) directory under
  /// the system temp dir. Never rendered into the report.
  std::string work_dir;
  /// Collect the full request-trace log (ChaosReport::rtrace) in addition
  /// to the always-on flight ring. Off by default: the full log is large.
  bool rtrace = false;
};

/// Outcome/accuracy tallies over one fixed virtual-time window, binned by
/// request ARRIVAL time.
struct WindowStats {
  std::uint64_t t0_us = 0;
  std::uint64_t arrivals = 0;
  std::uint64_t served = 0;
  std::uint64_t shed = 0;
  std::uint64_t timeout = 0;
  std::uint64_t failed = 0;
  std::uint64_t canary_total = 0;
  std::uint64_t canary_correct = 0;
};

/// How the run booted: fresh weights, or a checkpoint walk (with however
/// many corrupt files the walk quarantined on the way).
struct BootRecord {
  bool from_checkpoint = false;
  std::uint64_t version = 0;  ///< lifecycle initial_version
  std::uint64_t quarantined = 0;
  std::uint64_t store_versions_seeded = 0;  ///< checkpoints staged pre-boot
};

/// One invariant verdict. `enabled` is false when the scenario left the
/// bound at its neutral value; disabled checks never fail a run.
struct InvariantResult {
  std::string name;
  bool enabled = false;
  bool passed = true;
  double value = 0.0;  ///< what the run measured
  double bound = 0.0;  ///< what the scenario demanded
};

struct ChaosReport {
  std::string scenario;
  std::uint64_t seed = 0;
  std::size_t requests = 0;
  std::size_t dims = 0;
  BootRecord boot;
  std::vector<BurstRecord> bursts;
  serve::ServeReport serve;
  lifecycle::LifecycleReport lifecycle;
  std::vector<std::size_t> replay_class_histogram;
  std::uint64_t window_us = 100'000;
  std::vector<WindowStats> windows;
  std::vector<InvariantResult> invariants;
  bool passed = false;  ///< every enabled invariant held
  /// Observability captures, NOT rendered into generic.chaos.v1 (the report
  /// stays a pure summary): the full rtrace log (empty unless
  /// RunOptions::rtrace) and the flight-recorder ring, which the chaos tool
  /// auto-dumps as generic.flight.v1 when an invariant fails.
  obs::rtrace::TraceLog rtrace;
  obs::rtrace::FlightLog flight;
};

/// Run one scenario end to end. Throws std::runtime_error only on
/// infrastructure failures (unwritable work_dir); invariant violations are
/// reported, not thrown.
ChaosReport run_scenario(const ScenarioSpec& spec, const RunOptions& opt);

/// Render as schema `generic.chaos.v1`: fixed field order, "%.9g" doubles,
/// no wall-clock, thread-count or filesystem-path fields.
std::string chaos_report_to_json(const ChaosReport& report);
void write_chaos_json(const std::string& path, const ChaosReport& report);

}  // namespace generic::chaos
