#include "chaos/encoder_chaos.h"

#include <algorithm>
#include <stdexcept>

#include "resilience/fault_model.h"

namespace generic::chaos {

namespace {

using serve::EncoderUpdate;
using serve::ScriptedEncoderFaults;

/// encode_masked fanned across the pool in deterministic index order, the
/// masked twin of Encoder::encode_batch.
std::vector<hdc::IntHV> encode_all_masked(
    const enc::GenericEncoder& encoder,
    std::span<const std::vector<float>> samples,
    const std::vector<bool>& level_ok, bool id_ok, ThreadPool& pool) {
  std::vector<hdc::IntHV> out(samples.size());
  pool.parallel_for(samples.size(),
                    [&](std::size_t begin, std::size_t end, std::size_t) {
                      for (std::size_t i = begin; i < end; ++i)
                        out[i] = encoder.encode_masked(samples[i], level_ok,
                                                       id_ok);
                    });
  return out;
}

/// First scrub tick strictly after `vt` (the guard scans on a period, not
/// on the burst itself — damage sits undetected until the next pass).
std::uint64_t next_tick(std::uint64_t vt, std::uint64_t every) {
  return (vt / every + 1) * every;
}

}  // namespace

std::vector<ScriptedEncoderFaults::Entry> script_encoder_incident(
    enc::GenericEncoder& encoder, std::span<const std::vector<float>> samples,
    std::span<const hdc::IntHV> clean, const EncoderIncidentSpec& spec,
    ThreadPool& pool) {
  if (spec.scrub_every_us == 0)
    throw std::invalid_argument("script_encoder_incident: zero scrub period");
  if (clean.size() != samples.size())
    throw std::invalid_argument(
        "script_encoder_incident: clean table / sample count mismatch");

  const auto guard =
      resilience::EncoderGuard::commission(encoder, spec.seed_available);
  auto bursts = spec.bursts;
  std::stable_sort(bursts.begin(), bursts.end(),
                   [](const FaultBurst& a, const FaultBurst& b) {
                     return a.vt_us < b.vt_us;
                   });

  std::vector<ScriptedEncoderFaults::Entry> entries;
  for (std::size_t b = 0; b < bursts.size(); ++b) {
    const FaultBurst& burst = bursts[b];
    // Same per-burst stream derivation as ChaosHook: the pattern of burst i
    // is independent of every other burst.
    Rng rng(spec.seed ^ (0x9E3779B97F4A7C15ULL * (b + 1)));

    // -- Inject: one hit draw per level row, then one for the id seed row.
    auto& levels = encoder.mutable_level_memory();
    const auto rows = resilience::sample_faulty_rows(levels.num_levels(),
                                                     burst.fault.rate, rng);
    const bool hit_id = rng.bernoulli(burst.fault.rate);
    resilience::inject_encoder_rows(levels, rows, burst.fault.kind,
                                    burst.fault.burst_rate, rng);
    if (hit_id)
      resilience::inject_id_seed(encoder.mutable_id_memory(), burst.fault.kind,
                                 burst.fault.burst_rate, rng);

    const auto scan = guard.scan(encoder);
    const std::size_t faulty = scan.num_faulty();

    // -- kCorrupt at the burst vt: serving flips to the poisoned table.
    ScriptedEncoderFaults::Entry corrupt;
    corrupt.meta.phase = EncoderUpdate::Phase::kCorrupt;
    corrupt.meta.vt = burst.vt_us;
    corrupt.meta.faulty_rows = faulty;
    corrupt.meta.id_seed_faulty = !scan.id_ok;
    corrupt.table = encoder.encode_batch(samples, pool);
    entries.push_back(std::move(corrupt));
    if (faulty == 0) continue;  // burst drew no rows: nothing to repair

    // -- Detection at the next scrub tick.
    const std::uint64_t t1 = next_tick(burst.vt_us, spec.scrub_every_us);
    const bool can_scrub =
        spec.policy == resilience::RepairPolicy::kScrub && spec.seed_available;
    ScriptedEncoderFaults::Entry react;
    react.meta.vt = t1;
    react.meta.faulty_rows = faulty;
    react.meta.id_seed_faulty = !scan.id_ok;
    if (spec.policy == resilience::RepairPolicy::kDetect) {
      react.meta.phase = EncoderUpdate::Phase::kDetect;  // table unchanged
    } else {
      // kMask, and the first (masking) half of kScrub: serve degraded-but-
      // sane encodings while the (modeled) rematerialization runs. With no
      // seed to scrub from this is the terminal state — step the ladder.
      react.meta.phase = EncoderUpdate::Phase::kMask;
      react.meta.step_ladder =
          spec.policy == resilience::RepairPolicy::kScrub &&
          !spec.seed_available;
      react.table =
          encode_all_masked(encoder, samples, scan.level_ok, scan.id_ok, pool);
    }
    entries.push_back(std::move(react));
    if (!can_scrub) continue;  // damage persists into the next burst

    // -- Scrub one tick later: rows come back bit-identical or we throw.
    ScriptedEncoderFaults::Entry scrubbed;
    scrubbed.meta.phase = EncoderUpdate::Phase::kScrub;
    scrubbed.meta.vt = t1 + spec.scrub_every_us;
    scrubbed.meta.scrubbed_rows = guard.scrub(encoder);
    scrubbed.meta.scrub_verified = true;  // scrub() threw otherwise
    scrubbed.table = encoder.encode_batch(samples, pool);
    if (!std::equal(scrubbed.table.begin(), scrubbed.table.end(),
                    clean.begin(), clean.end()))
      throw std::runtime_error(
          "script_encoder_incident: scrubbed encodings differ from clean");
    entries.push_back(std::move(scrubbed));
  }
  return entries;
}

}  // namespace generic::chaos
