#include "chaos/orchestrator.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdio>
#include <deque>
#include <filesystem>
#include <fstream>
#include <memory>
#include <stdexcept>
#include <utility>

#include "chaos/encoder_chaos.h"
#include "common/thread_pool.h"
#include "data/drift.h"
#include "encoding/encoders.h"
#include "lifecycle/checkpoint_store.h"
#include "model/pipeline.h"
#include "obs/export.h"

namespace generic::chaos {
namespace {

namespace fs = std::filesystem;

std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

std::string u64(std::uint64_t v) { return std::to_string(v); }

bool in_flash(const ScenarioSpec& spec, std::uint64_t vt) {
  return spec.flash_single_class && vt >= spec.load.flash_start_us &&
         vt < spec.load.flash_start_us + spec.load.flash_len_us;
}

/// Flip one mid-file byte: enough to break the checkpoint CRC.
void corrupt_file(const std::string& path) {
  const auto size = fs::file_size(path);
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  if (!f) throw std::runtime_error("cannot corrupt " + path);
  f.seekg(static_cast<std::streamoff>(size / 2));
  char byte = 0;
  f.read(&byte, 1);
  f.seekp(static_cast<std::streamoff>(size / 2));
  byte = static_cast<char>(byte ^ 0x5A);
  f.write(&byte, 1);
}

bool served_outcome(serve::Outcome o) {
  return o == serve::Outcome::kOk || o == serve::Outcome::kRetried ||
         o == serve::Outcome::kDegraded;
}

}  // namespace

ChaosReport run_scenario(const ScenarioSpec& spec, const RunOptions& opt) {
  ThreadPool pool(opt.threads);

  // Arm the black box: every scenario records into the flight ring so an
  // invariant failure can be dumped post mortem; the full trace log is
  // opt-in (RunOptions::rtrace) because it keeps every event of the run.
  const bool prev_trace = obs::rtrace::trace_enabled();
  const bool prev_flight = obs::rtrace::flight_enabled();
  obs::rtrace::reset();
  obs::rtrace::set_flight(true);
  obs::rtrace::set_trace(opt.rtrace);

  ChaosReport report;
  report.scenario = spec.name;
  report.seed = opt.seed;
  report.requests = spec.requests;
  report.dims = spec.dims;

  // ---- The world: drift stream, encoder, initial classifier ----
  data::DriftStreamSpec dspec;
  dspec.severity = spec.severity;
  dspec.seed = opt.seed;
  data::DriftStream stream(dspec);

  const std::size_t epochs = spec.dims >= 1024 ? 8 : 5;
  const auto ds = stream.make_dataset(spec.train_samples, 200, false);
  enc::EncoderConfig ecfg;
  ecfg.dims = spec.dims;
  enc::GenericEncoder encoder(ecfg);
  encoder.fit(ds.train_x);
  const auto train = model::encode_all(encoder, ds.train_x, pool);
  auto fresh = std::make_shared<model::HdcClassifier>(spec.dims,
                                                      dspec.classes);
  fresh->fit_parallel(train, ds.train_y, epochs, pool);

  // ---- Boot: fresh weights, or a (sabotaged) checkpoint store walk ----
  std::shared_ptr<const model::HdcClassifier> serving = fresh;
  std::unique_ptr<lifecycle::CheckpointStore> store;
  if (spec.corrupt_boot) {
    const fs::path dir =
        opt.work_dir.empty()
            ? fs::temp_directory_path() /
                  ("generic-chaos-" + spec.name + "-" + u64(opt.seed))
            : fs::path(opt.work_dir);
    fs::remove_all(dir);
    store = std::make_unique<lifecycle::CheckpointStore>(dir.string(), 4);

    // Stage history: version 1 is the model we just fit; version 2 is a
    // further-trained "newer" snapshot — whose file we then corrupt, so
    // boot must quarantine it and fall back to version 1.
    store->save(*fresh, 1, 0);
    model::HdcClassifier newer = *fresh;
    newer.fit_parallel(train, ds.train_y, 2, pool);
    corrupt_file(store->save(newer, 2, 0));
    report.boot.store_versions_seeded = 2;

    auto loaded = store->load_latest();
    if (!loaded.has_value())
      throw std::runtime_error("corrupt_boot: no checkpoint survived");
    report.boot.from_checkpoint = true;
    report.boot.version = loaded->version;
    report.boot.quarantined = store->quarantined();
    serving = std::make_shared<model::HdcClassifier>(std::move(loaded->model));
  }

  // ---- The serving trace: shaped arrivals over the drift stream ----
  Rng arrival_rng(opt.seed ^ 0x0A11CE5ULL);
  const auto arrivals =
      sample_arrivals(spec.load, spec.requests, arrival_rng);

  // Stream indices: sequential, except that flash-window requests draw the
  // next sample of the crowd's class (skipped indices are served later, so
  // every request keeps a distinct query).
  std::vector<std::uint64_t> stream_index(spec.requests);
  std::uint64_t next_index = 0;
  std::deque<std::uint64_t> leftovers;
  for (std::size_t i = 0; i < spec.requests; ++i) {
    if (in_flash(spec, arrivals[i])) {
      while (stream.label_at(next_index) != spec.flash_class)
        leftovers.push_back(next_index++);
      stream_index[i] = next_index++;
    } else if (!leftovers.empty()) {
      stream_index[i] = leftovers.front();
      leftovers.pop_front();
    } else {
      stream_index[i] = next_index++;
    }
  }

  std::vector<std::vector<float>> xs;
  std::vector<int> labels;
  xs.reserve(spec.requests);
  labels.reserve(spec.requests);
  for (std::size_t i = 0; i < spec.requests; ++i) {
    const bool post = spec.drift_enabled && i >= spec.shift_at;
    auto s = stream.sample(stream_index[i], post);
    xs.push_back(std::move(s.x));
    labels.push_back(s.label);
  }
  const auto queries = model::encode_all(encoder, xs, pool);

  // ---- Lifecycle + chaos hook + engine ----
  serve::ServeConfig scfg;
  scfg.seed = opt.seed ^ 0x5EB7EULL;
  scfg.min_dims = spec.dims / 4;

  lifecycle::LifecycleConfig lcfg;
  lcfg.replay_capacity = 256;
  lcfg.replay_class_cap = spec.replay_class_cap;
  lcfg.holdout = 96;
  lcfg.min_replay = 192;
  lcfg.min_fresh = spec.min_fresh;
  lcfg.retrain_epochs = 3;
  lcfg.retrain_cost_us = spec.retrain_cost_us;
  lcfg.cooldown_us = 50000;
  lcfg.min_dims = scfg.min_dims;
  lcfg.threads = opt.threads;
  lcfg.initial_version = report.boot.version;
  lcfg.seed = opt.seed ^ 0xC1F3ULL;
  lcfg.shadow_fault_rate = spec.shadow_fault_rate;

  // Encoder-memory incidents: the whole corrupt -> mask -> scrub timeline
  // is precomputed against the clean query table before the engine starts
  // (encoder_chaos.h), so the run stays a pure function of (spec, seed).
  std::unique_ptr<serve::ScriptedEncoderFaults> encoder_faults;
  if (!spec.encoder_bursts.empty()) {
    EncoderIncidentSpec espec;
    espec.bursts = spec.encoder_bursts;
    espec.scrub_every_us = spec.scrub_every_us;
    espec.policy = spec.encoder_repair;
    espec.seed_available = spec.encoder_seed_available;
    espec.seed = opt.seed ^ 0xE2C0DE5ULL;
    encoder_faults = std::make_unique<serve::ScriptedEncoderFaults>(
        script_encoder_incident(encoder, xs, queries, espec, pool));
  }

  lifecycle::Manager manager(serving, queries, labels, lcfg, store.get());
  ChaosHook hook(&manager, serving, spec.bursts, opt.seed ^ 0xFA017ULL);
  serve::ServeEngine engine(*serving, queries, labels, scfg, pool, {},
                            &hook, encoder_faults.get());

  std::vector<serve::ResponseFuture> futures;
  futures.reserve(spec.requests);
  for (std::size_t id = 0; id < spec.requests; ++id) {
    serve::Request req;
    req.id = id;
    req.arrival_us = arrivals[id];
    req.deadline_us = arrivals[id] + scfg.deadline_us;
    req.query = id;
    req.canary = (id % spec.canary_every == 0);
    futures.push_back(engine.submit(req));
  }
  report.serve = engine.finish();
  report.lifecycle = manager.report();
  report.replay_class_histogram = manager.replay_class_histogram();
  report.bursts = hook.fired();

  // ---- Windowed timeline, binned by arrival ----
  const std::uint64_t span = arrivals.empty() ? 0 : arrivals.back() + 1;
  report.windows.assign((span + report.window_us - 1) / report.window_us,
                        WindowStats{});
  for (std::size_t w = 0; w < report.windows.size(); ++w)
    report.windows[w].t0_us = w * report.window_us;

  std::uint64_t unresolved = 0;
  std::array<std::uint64_t, serve::kNumOutcomes> seen{};
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const auto r = futures[i].try_get();
    if (!r.has_value()) {
      ++unresolved;
      continue;
    }
    ++seen[static_cast<std::size_t>(r->outcome)];
    WindowStats& w = report.windows[arrivals[i] / report.window_us];
    ++w.arrivals;
    switch (r->outcome) {
      case serve::Outcome::kOk:
      case serve::Outcome::kRetried:
      case serve::Outcome::kDegraded:
        ++w.served;
        break;
      case serve::Outcome::kShed:
        ++w.shed;
        break;
      case serve::Outcome::kTimeout:
        ++w.timeout;
        break;
      case serve::Outcome::kFailed:
        ++w.failed;
        break;
    }
    if (served_outcome(r->outcome) && (i % spec.canary_every == 0)) {
      ++w.canary_total;
      if (r->predicted == labels[i]) ++w.canary_correct;
    }
  }

  // ---- Invariants ----
  auto check = [&](const std::string& name, bool enabled, double value,
                   double bound, bool passed) {
    report.invariants.push_back(
        InvariantResult{name, enabled, !enabled || passed, value, bound});
  };

  // Canary accuracy over served requests with arrivals in [lo, hi).
  auto window_canary_acc = [&](std::uint64_t lo, std::uint64_t hi,
                               std::uint64_t& total_out) {
    std::uint64_t total = 0, correct = 0;
    for (std::size_t i = 0; i < futures.size(); ++i) {
      if (i % spec.canary_every != 0) continue;
      if (arrivals[i] < lo || arrivals[i] >= hi) continue;
      const auto r = futures[i].try_get();
      if (!r.has_value() || !served_outcome(r->outcome)) continue;
      ++total;
      if (r->predicted == labels[i]) ++correct;
    }
    total_out = total;
    return total == 0 ? 0.0
                      : static_cast<double>(correct) /
                            static_cast<double>(total);
  };

  check("futures_resolved", true, static_cast<double>(unresolved), 0.0,
        unresolved == 0);

  std::uint64_t outcome_mismatch = 0;
  for (std::size_t i = 0; i < serve::kNumOutcomes; ++i)
    if (seen[i] != report.serve.outcomes[i]) ++outcome_mismatch;
  check("outcome_accounting", true, static_cast<double>(outcome_mismatch),
        0.0, outcome_mismatch == 0);

  // Per-version tallies must account for every served request exactly once:
  // the externally visible face of the no-half-swapped-model guarantee.
  std::uint64_t version_served = 0;
  for (const auto& v : report.serve.versions) version_served += v.served;
  check("version_accounting", true, static_cast<double>(version_served),
        static_cast<double>(report.serve.served),
        version_served == report.serve.served);

  const std::uint64_t shed =
      report.serve.outcomes[static_cast<std::size_t>(serve::Outcome::kShed)];
  const double shed_frac =
      spec.requests == 0
          ? 0.0
          : static_cast<double>(shed) / static_cast<double>(spec.requests);
  check("shed_fraction", spec.invariants.max_shed_frac < 1.0, shed_frac,
        spec.invariants.max_shed_frac,
        shed_frac <= spec.invariants.max_shed_frac);

  std::uint64_t canary_total = 0, canary_correct = 0;
  for (const auto& w : report.windows) {
    canary_total += w.canary_total;
    canary_correct += w.canary_correct;
  }
  const double canary_acc =
      canary_total == 0 ? 0.0
                        : static_cast<double>(canary_correct) /
                              static_cast<double>(canary_total);
  check("canary_accuracy", spec.invariants.min_canary_accuracy > 0.0,
        canary_acc, spec.invariants.min_canary_accuracy,
        canary_acc >= spec.invariants.min_canary_accuracy);

  check("lifecycle_swaps", spec.invariants.min_swaps > 0,
        static_cast<double>(report.lifecycle.swapped),
        static_cast<double>(spec.invariants.min_swaps),
        report.lifecycle.swapped >= spec.invariants.min_swaps);

  if (spec.invariants.recovery_window_us > 0) {
    // Accuracy must recover after the LAST lifecycle (non-chaos) swap.
    std::uint64_t swap_vt = 0;
    bool have_swap = false;
    for (const auto& s : report.serve.swaps)
      if (!s.rollback && s.version < kChaosVersionBase) {
        swap_vt = s.vt;
        have_swap = true;
      }
    std::uint64_t total = 0, correct = 0;
    if (have_swap) {
      for (std::size_t i = 0; i < futures.size(); ++i) {
        if (i % spec.canary_every != 0) continue;
        if (arrivals[i] < swap_vt ||
            arrivals[i] >= swap_vt + spec.invariants.recovery_window_us)
          continue;
        const auto r = futures[i].try_get();
        if (!r.has_value() || !served_outcome(r->outcome)) continue;
        ++total;
        if (r->predicted == labels[i]) ++correct;
      }
    }
    const double recovered =
        total == 0 ? 0.0
                   : static_cast<double>(correct) / static_cast<double>(total);
    check("accuracy_recovery", true, recovered,
          spec.invariants.recovery_accuracy,
          have_swap && total > 0 &&
              recovered >= spec.invariants.recovery_accuracy);
  } else {
    check("accuracy_recovery", false, 0.0, 0.0, true);
  }

  check("checkpoint_quarantine", spec.invariants.expect_quarantine,
        static_cast<double>(report.boot.quarantined), 1.0,
        report.boot.from_checkpoint && report.boot.quarantined >= 1);

  // Sabotaged shadows must be caught by the holdout gate, not installed.
  check("rollbacks", spec.invariants.min_rollbacks > 0,
        static_cast<double>(report.lifecycle.rolled_back),
        static_cast<double>(spec.invariants.min_rollbacks),
        report.lifecycle.rolled_back >= spec.invariants.min_rollbacks);

  check("encoder_scrub", spec.invariants.min_scrubbed_rows > 0,
        static_cast<double>(report.serve.scrubbed_rows),
        static_cast<double>(spec.invariants.min_scrubbed_rows),
        report.serve.scrubbed_rows >= spec.invariants.min_scrubbed_rows);

  if (spec.invariants.masked_accuracy_below > 0.0) {
    // The masked interval [first mask, first scrub after it) must cost
    // measurable accuracy — otherwise the scenario is not demonstrating
    // the degradation the scrub later repairs.
    std::uint64_t m0 = 0, m1 = report.serve.makespan_us;
    bool have_mask = false;
    for (const auto& e : report.serve.encoder_faults) {
      if (!have_mask && e.phase == serve::EncoderUpdate::Phase::kMask) {
        m0 = e.vt;
        have_mask = true;
      } else if (have_mask &&
                 e.phase == serve::EncoderUpdate::Phase::kScrub) {
        m1 = e.vt;
        break;
      }
    }
    std::uint64_t total = 0;
    const double masked_acc =
        have_mask ? window_canary_acc(m0, m1, total) : 0.0;
    check("encoder_degraded", true, masked_acc,
          spec.invariants.masked_accuracy_below,
          have_mask && total > 0 &&
              masked_acc <= spec.invariants.masked_accuracy_below);
  } else {
    check("encoder_degraded", false, 0.0, 0.0, true);
  }

  if (spec.invariants.encoder_recovery_window_us > 0) {
    // Accuracy must fully recover after the LAST verified encoder scrub.
    std::uint64_t scrub_vt = 0;
    bool have_scrub = false;
    for (const auto& e : report.serve.encoder_faults)
      if (e.phase == serve::EncoderUpdate::Phase::kScrub &&
          e.scrub_verified) {
        scrub_vt = e.vt;
        have_scrub = true;
      }
    std::uint64_t total = 0;
    const double recovered =
        have_scrub
            ? window_canary_acc(
                  scrub_vt,
                  scrub_vt + spec.invariants.encoder_recovery_window_us,
                  total)
            : 0.0;
    check("encoder_recovery", true, recovered,
          spec.invariants.encoder_recovery_accuracy,
          have_scrub && total > 0 &&
              recovered >= spec.invariants.encoder_recovery_accuracy);
  } else {
    check("encoder_recovery", false, 0.0, 0.0, true);
  }

  report.passed = true;
  for (const auto& inv : report.invariants)
    if (!inv.passed) report.passed = false;

  report.rtrace = obs::rtrace::trace_log();
  report.flight = obs::rtrace::flight_log();
  obs::rtrace::set_trace(prev_trace);
  obs::rtrace::set_flight(prev_flight);
  return report;
}

std::string chaos_report_to_json(const ChaosReport& report) {
  // Field order is part of the schema: equal reports render to equal
  // bytes. threads and filesystem paths are deliberately absent.
  std::string out = "{\n";
  out += "  \"schema\": \"generic.chaos.v1\",\n";
  out += "  \"scenario\": " + obs::json_escape(report.scenario) + ",\n";
  out += "  \"seed\": " + u64(report.seed) + ",\n";
  out += "  \"requests\": " + u64(report.requests) + ",\n";
  out += "  \"dims\": " + u64(report.dims) + ",\n";
  out += "  \"boot\": {\"from_checkpoint\": ";
  out += report.boot.from_checkpoint ? "true" : "false";
  out += ", \"version\": " + u64(report.boot.version) +
         ", \"quarantined\": " + u64(report.boot.quarantined) +
         ", \"store_versions_seeded\": " +
         u64(report.boot.store_versions_seeded) + "},\n";
  out += "  \"bursts\": [";
  for (std::size_t i = 0; i < report.bursts.size(); ++i) {
    const BurstRecord& b = report.bursts[i];
    out += (i == 0 ? "\n" : ",\n");
    out += "    {\"scheduled_vt_us\": " + u64(b.scheduled_vt_us) +
           ", \"fired_vt_us\": " + u64(b.fired_vt_us) +
           ", \"version\": " + u64(b.version) + ", \"kind\": \"" +
           std::string(resilience::fault_kind_name(b.fault.kind)) +
           "\", \"rate\": " + fmt(b.fault.rate) +
           ", \"burst_rate\": " + fmt(b.fault.burst_rate) + ", \"banks\": [";
    for (std::size_t k = 0; k < b.banks.size(); ++k) {
      if (k != 0) out += ", ";
      out += u64(b.banks[k]);
    }
    out += "]}";
  }
  out += report.bursts.empty() ? "],\n" : "\n  ],\n";

  const serve::ServeReport& s = report.serve;
  out += "  \"serve\": {\n";
  out += "    \"requests\": " + u64(s.requests) +
         ",\n    \"makespan_us\": " + u64(s.makespan_us) +
         ",\n    \"throughput_rps\": " + fmt(s.throughput_rps) +
         ",\n    \"outcomes\": {";
  for (std::size_t i = 0; i < serve::kNumOutcomes; ++i) {
    if (i != 0) out += ", ";
    out += "\"" +
           std::string(serve::outcome_name(
               static_cast<serve::Outcome>(i))) +
           "\": " + u64(s.outcomes[i]);
  }
  out += "},\n";
  const double accuracy =
      s.served == 0 ? 0.0
                    : static_cast<double>(s.correct) /
                          static_cast<double>(s.served);
  out += "    \"served\": " + u64(s.served) +
         ",\n    \"correct\": " + u64(s.correct) +
         ",\n    \"accuracy\": " + fmt(accuracy) +
         ",\n    \"steps_down\": " + u64(s.steps_down) +
         ",\n    \"steps_up\": " + u64(s.steps_up) +
         ",\n    \"final_rung\": " + u64(s.final_rung) + ",\n";
  out += "    \"slo_alerts\": [";
  for (std::size_t i = 0; i < s.slo_alerts.size(); ++i) {
    const serve::BurnAlert& a = s.slo_alerts[i];
    if (i != 0) out += ", ";
    out += "{\"vt_us\": " + u64(a.vt);
    out += ", \"kind\": \"";
    out += a.fired ? "fire" : "clear";
    out += "\", \"fast_burn\": " + fmt(a.fast_burn);
    out += ", \"slow_burn\": " + fmt(a.slow_burn) + "}";
  }
  out += "],\n";
  out += "    \"swaps\": [";
  for (std::size_t i = 0; i < s.swaps.size(); ++i) {
    if (i != 0) out += ", ";
    out += "{\"vt_us\": " + u64(s.swaps[i].vt) +
           ", \"version\": " + u64(s.swaps[i].version) + ", \"rollback\": " +
           (s.swaps[i].rollback ? "true" : "false") + "}";
  }
  out += "],\n";
  out += "    \"versions\": [";
  for (std::size_t i = 0; i < s.versions.size(); ++i) {
    if (i != 0) out += ", ";
    out += "{\"version\": " + u64(s.versions[i].version) +
           ", \"served\": " + u64(s.versions[i].served) +
           ", \"correct\": " + u64(s.versions[i].correct) + "}";
  }
  out += "],\n";
  out += "    \"encoder_faults\": [";
  for (std::size_t i = 0; i < s.encoder_faults.size(); ++i) {
    const serve::EncoderFaultEvent& e = s.encoder_faults[i];
    if (i != 0) out += ", ";
    out += "{\"vt_us\": " + u64(e.vt) + ", \"phase\": \"" +
           std::string(serve::encoder_phase_name(e.phase)) +
           "\", \"faulty_rows\": " + u64(e.faulty_rows) +
           ", \"id_seed_faulty\": ";
    out += e.id_seed_faulty ? "true" : "false";
    out += ", \"scrubbed_rows\": " + u64(e.scrubbed_rows) +
           ", \"scrub_verified\": ";
    out += e.scrub_verified ? "true" : "false";
    out += ", \"stepped_ladder\": ";
    out += e.stepped_ladder ? "true" : "false";
    out += "}";
  }
  out += "],\n";
  out += "    \"scrubbed_rows\": " + u64(s.scrubbed_rows) + "\n  },\n";

  const lifecycle::LifecycleReport& l = report.lifecycle;
  out += "  \"lifecycle\": {\"alarms\": " + u64(l.alarms) +
         ", \"triggered\": " + u64(l.triggered) +
         ", \"swapped\": " + u64(l.swapped) +
         ", \"rolled_back\": " + u64(l.rolled_back) +
         ", \"replay_size\": " + u64(l.replay_size) +
         ", \"final_accuracy_ewma\": " + fmt(l.final_accuracy_ewma) +
         ", \"checkpoints\": {\"saved\": " + u64(l.checkpoints_saved) +
         ", \"pruned\": " + u64(l.checkpoints_pruned) +
         ", \"quarantined\": " + u64(l.checkpoints_quarantined) + "}},\n";

  out += "  \"replay_class_histogram\": [";
  for (std::size_t i = 0; i < report.replay_class_histogram.size(); ++i) {
    if (i != 0) out += ", ";
    out += u64(report.replay_class_histogram[i]);
  }
  out += "],\n";

  out += "  \"window_us\": " + u64(report.window_us) + ",\n";
  out += "  \"windows\": [";
  for (std::size_t i = 0; i < report.windows.size(); ++i) {
    const WindowStats& w = report.windows[i];
    out += (i == 0 ? "\n" : ",\n");
    out += "    {\"t0_us\": " + u64(w.t0_us) +
           ", \"arrivals\": " + u64(w.arrivals) +
           ", \"served\": " + u64(w.served) + ", \"shed\": " + u64(w.shed) +
           ", \"timeout\": " + u64(w.timeout) +
           ", \"failed\": " + u64(w.failed) +
           ", \"canary_total\": " + u64(w.canary_total) +
           ", \"canary_correct\": " + u64(w.canary_correct) + "}";
  }
  out += report.windows.empty() ? "],\n" : "\n  ],\n";

  out += "  \"invariants\": [";
  for (std::size_t i = 0; i < report.invariants.size(); ++i) {
    const InvariantResult& inv = report.invariants[i];
    out += (i == 0 ? "\n" : ",\n");
    out += "    {\"name\": " + obs::json_escape(inv.name) + ", \"enabled\": ";
    out += inv.enabled ? "true" : "false";
    out += ", \"passed\": ";
    out += inv.passed ? "true" : "false";
    out += ", \"value\": " + fmt(inv.value) +
           ", \"bound\": " + fmt(inv.bound) + "}";
  }
  out += report.invariants.empty() ? "],\n" : "\n  ],\n";
  out += std::string("  \"passed\": ") + (report.passed ? "true" : "false") +
         "\n";
  out += "}\n";
  return out;
}

void write_chaos_json(const std::string& path, const ChaosReport& report) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw std::runtime_error("cannot write " + path);
  out << chaos_report_to_json(report);
}

}  // namespace generic::chaos
