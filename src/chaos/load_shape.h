// Traffic shapes for the chaos campaigns (docs/chaos.md).
//
// A LoadShape is a deterministic intensity function rate(vt) over VIRTUAL
// time, plus a seeded arrival sampler. Three shapes cover the campaign
// scenarios:
//
//   kPoisson — constant-rate open-loop arrivals, the baseline the serving
//              engine was sized for;
//   kDiurnal — a sine between low_rps and high_rps with the given period:
//              the slow day/night swing that walks the engine up and down
//              its degradation ladder;
//   kFlash   — base_rps with a multiplicative burst window on top: the
//              flash crowd that slams the queue into its high-water mark
//              within a few virtual milliseconds.
//
// Arrivals are sampled as a non-homogeneous Poisson process by thinning
// against the shape's peak rate: exponential gaps at peak_rps, each
// candidate kept with probability rate(vt) / peak_rps. Every draw comes
// from the caller's Rng, so a (spec, seed) pair always yields the identical
// arrival sequence — the property the byte-identical chaos reports build
// on.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace generic::chaos {

enum class LoadKind {
  kPoisson,  ///< constant base_rps
  kDiurnal,  ///< sine between low_rps and high_rps, period_us per cycle
  kFlash,    ///< base_rps, times flash_mult inside the flash window
};

struct LoadShapeSpec {
  LoadKind kind = LoadKind::kPoisson;
  double base_rps = 1000.0;  ///< kPoisson / kFlash baseline intensity
  double low_rps = 600.0;    ///< kDiurnal trough
  double high_rps = 2400.0;  ///< kDiurnal crest
  std::uint64_t period_us = 1'000'000;  ///< kDiurnal cycle length
  std::uint64_t flash_start_us = 0;     ///< kFlash burst window start
  std::uint64_t flash_len_us = 0;       ///< kFlash burst window length
  double flash_mult = 1.0;              ///< kFlash intensity multiplier
};

/// Instantaneous intensity (requests per virtual second) at `vt`.
double rate_at(const LoadShapeSpec& spec, std::uint64_t vt);

/// The shape's peak intensity — the thinning envelope.
double peak_rate(const LoadShapeSpec& spec);

/// `count` arrival timestamps (virtual us, strictly increasing) sampled by
/// thinning. Pure function of (spec, rng state).
std::vector<std::uint64_t> sample_arrivals(const LoadShapeSpec& spec,
                                           std::size_t count, Rng& rng);

}  // namespace generic::chaos
