// Mid-run fault injection through the lifecycle seam (docs/chaos.md).
//
// The serving engine's model pointer is immutable between hot-swaps by
// design — mutating class memory under a running control thread would be a
// data race AND would break the byte-identical-report contract. The chaos
// campaigns therefore corrupt the model the same way real updates arrive:
// ChaosHook interposes on the engine's ModelLifecycle seam, and when a
// scheduled burst comes due it clones the CURRENTLY SERVING model, injects
// the burst's fault into the clone, and hands it back as a regular
// ModelUpdate. The engine installs it with the normal swap protocol (flush
// every deferred batch first), so the corruption lands at one exact virtual
// time with no request ever served from a half-written model.
//
// Everything else forwards to the wrapped inner lifecycle (normally
// lifecycle::Manager). The Manager keeps its own clean baseline, so the
// heal path stays honest: drift detection sees the corrupted model's
// collapsed margins, triggers a retrain from clean weights, and the
// validated shadow hot-swaps the damage away.
//
// Chaos installs use versions kChaosVersionBase + burst_index, far above
// anything the Manager will ever mint, so reports can tell sabotage from
// recovery.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "chaos/scenario.h"
#include "common/rng.h"
#include "serve/lifecycle_hook.h"

namespace generic::chaos {

inline constexpr std::uint64_t kChaosVersionBase = 1000;

/// What one burst actually did, for the report.
struct BurstRecord {
  std::uint64_t scheduled_vt_us = 0;
  std::uint64_t fired_vt_us = 0;  ///< the poll() that delivered it
  std::uint64_t version = 0;      ///< kChaosVersionBase + burst index
  resilience::FaultSpec fault;
  std::vector<std::size_t> banks;  ///< hit banks (kBankCorrelated only)
};

class ChaosHook : public serve::ModelLifecycle {
 public:
  /// `inner` (optional, not owned) receives every observation and is polled
  /// first, so real lifecycle updates and chaos bursts interleave by
  /// virtual time. `initial` is the model the engine boots from; the hook
  /// tracks the currently serving model through every swap it sees.
  ChaosHook(serve::ModelLifecycle* inner,
            std::shared_ptr<const model::HdcClassifier> initial,
            std::vector<FaultBurst> bursts, std::uint64_t seed);

  void observe(const serve::ServedObservation& obs) override;
  std::optional<serve::ModelUpdate> poll(std::uint64_t now) override;

  const std::vector<BurstRecord>& fired() const { return fired_; }

 private:
  serve::ModelLifecycle* inner_;
  std::shared_ptr<const model::HdcClassifier> current_;
  std::vector<FaultBurst> bursts_;  ///< sorted by vt_us
  std::size_t next_burst_ = 0;
  std::uint64_t seed_;
  std::deque<serve::ModelUpdate> pending_inner_;
  std::vector<BurstRecord> fired_;
};

}  // namespace generic::chaos
