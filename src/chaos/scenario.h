// Declarative chaos scenarios (docs/chaos.md).
//
// A ScenarioSpec is a named, fully declarative timeline of everything that
// goes wrong in one end-to-end campaign run: the traffic shape, an optional
// concept shift in the query stream, scheduled class-memory fault bursts,
// and an optionally pre-corrupted checkpoint store at boot. Alongside the
// failure script it carries the invariant bounds the run must satisfy —
// the scenario is both the attack and the acceptance test.
//
// The registry (all_scenarios) ships the eight named campaigns:
//
//   diurnal                — day/night sine across the capacity line; the
//                            ladder must absorb the crest (bounded shed).
//   flash_crowd            — 6x single-class burst; admission control sheds
//                            predictably and the per-class replay quota
//                            keeps the flood from owning the replay buffer.
//   bank_faults            — a correlated class-memory bank burst corrupts
//                            the serving model mid-run; drift detection
//                            must notice and a clean retrain must heal it.
//   drift_under_overload   — concept shift while demand exceeds capacity;
//                            the lifecycle must still close its loop.
//   corrupt_checkpoint_boot— the newest checkpoint on disk is garbage; boot
//                            must quarantine it and serve from the older
//                            known-good version.
//   encoder_corruption     — a burst corrupts level/id encoder memory
//                            mid-run; the guard masks around the damage and
//                            the seed scrub must restore accuracy in full.
//   multi_burst            — repeated class-memory AND encoder bursts on a
//                            schedule; every repair loop must close, twice.
//   shadow_fault_under_load— every retrained shadow is corrupted before
//                            validation; the holdout gate must reject them
//                            all and roll back instead of swapping garbage.
//
// Every spec is a pure value: (spec, seed) fully determines the run and its
// generic.chaos.v1 report, byte-identical across --threads.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "chaos/load_shape.h"
#include "resilience/encoder_guard.h"
#include "resilience/fault_model.h"

namespace generic::chaos {

/// One scheduled mid-run fault injection on the virtual timeline.
struct FaultBurst {
  std::uint64_t vt_us = 0;  ///< injected at the first poll at/after this vt
  resilience::FaultSpec fault;
};

/// Bounds the run must satisfy; violations fail the scenario (and the
/// generic_chaos exit code). A bound of 0 / false disables its check.
struct InvariantSpec {
  double max_shed_frac = 1.0;   ///< shed / requests ceiling
  double min_canary_accuracy = 0.0;  ///< whole-run canary accuracy floor
  std::size_t min_swaps = 0;    ///< validated lifecycle swaps required
  /// Accuracy recovery after the LAST lifecycle swap: windowed canary
  /// accuracy over [swap_vt, swap_vt + recovery_window_us] must reach
  /// recovery_accuracy. 0 disables.
  std::uint64_t recovery_window_us = 0;
  double recovery_accuracy = 0.0;
  bool expect_quarantine = false;  ///< boot must quarantine >= 1 checkpoint
  std::size_t min_rollbacks = 0;   ///< rejected-shadow rollbacks required
  std::size_t min_scrubbed_rows = 0;  ///< encoder rows the scrub must repair
  /// Degradation demonstration: windowed canary accuracy between the first
  /// encoder mask and the first scrub after it must stay BELOW this ceiling
  /// (the masked encodings measurably cost accuracy). 0 disables.
  double masked_accuracy_below = 0.0;
  /// Encoder recovery: windowed canary accuracy over [last scrub vt,
  /// last scrub vt + encoder_recovery_window_us] must reach
  /// encoder_recovery_accuracy. 0 disables.
  std::uint64_t encoder_recovery_window_us = 0;
  double encoder_recovery_accuracy = 0.0;
};

struct ScenarioSpec {
  std::string name;
  std::string description;
  std::size_t requests = 2000;
  std::size_t dims = 1024;
  std::size_t train_samples = 1200;  ///< initial-fit training-set size
  std::size_t canary_every = 2;
  LoadShapeSpec load;

  // Concept shift in the query stream (data::DriftStream regimes).
  bool drift_enabled = false;
  std::size_t shift_at = 0;  ///< first post-shift request index
  double severity = 0.75;

  // Flash-crowd class skew: requests inside the flash window draw only
  // samples of flash_class (the "everyone asks the same question" crowd).
  bool flash_single_class = false;
  int flash_class = 0;

  // Scheduled mid-run fault bursts, injected through the ChaosHook.
  std::vector<FaultBurst> bursts;

  // Scheduled encoder-memory bursts (level rows + id seed), played through
  // the serve-side EncoderMemory seam with a periodic virtual-time
  // detect/scrub pass; see chaos/encoder_chaos.h for the timeline model.
  std::vector<FaultBurst> encoder_bursts;
  std::uint64_t scrub_every_us = 100000;
  resilience::RepairPolicy encoder_repair = resilience::RepairPolicy::kScrub;
  bool encoder_seed_available = true;

  // Shadow-model sabotage: corrupt every retrained shadow at this bit-flip
  // rate before validation (lifecycle's holdout gate must catch them).
  double shadow_fault_rate = 0.0;

  // Boot-time checkpoint corruption: the store is pre-seeded with two
  // checkpoints and the newest one's bytes are flipped before boot.
  bool corrupt_boot = false;

  // Lifecycle knobs the scenario needs (0 = keep the orchestrator default).
  std::size_t replay_class_cap = 0;
  std::uint64_t retrain_cost_us = 30000;
  std::size_t min_fresh = 160;

  InvariantSpec invariants;
};

/// The eight named campaigns. `quick` shrinks requests/dims for tests and CI
/// smoke runs; golden fixtures are generated from the quick specs.
std::vector<ScenarioSpec> all_scenarios(bool quick);

/// Lookup by name; nullopt when unknown.
std::optional<ScenarioSpec> find_scenario(const std::string& name, bool quick);

}  // namespace generic::chaos
