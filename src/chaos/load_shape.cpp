#include "chaos/load_shape.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace generic::chaos {

namespace {
constexpr double kTwoPi = 6.283185307179586476925286766559;
}  // namespace

double rate_at(const LoadShapeSpec& spec, std::uint64_t vt) {
  switch (spec.kind) {
    case LoadKind::kPoisson:
      return spec.base_rps;
    case LoadKind::kDiurnal: {
      const double mid = 0.5 * (spec.low_rps + spec.high_rps);
      const double amp = 0.5 * (spec.high_rps - spec.low_rps);
      const double phase = static_cast<double>(vt % spec.period_us) /
                           static_cast<double>(spec.period_us);
      // Start at the trough: a campaign warms up at low traffic.
      return mid - amp * std::cos(kTwoPi * phase);
    }
    case LoadKind::kFlash: {
      const bool in_burst = vt >= spec.flash_start_us &&
                            vt < spec.flash_start_us + spec.flash_len_us;
      return in_burst ? spec.base_rps * spec.flash_mult : spec.base_rps;
    }
  }
  throw std::invalid_argument("rate_at: unknown load kind");
}

double peak_rate(const LoadShapeSpec& spec) {
  switch (spec.kind) {
    case LoadKind::kPoisson:
      return spec.base_rps;
    case LoadKind::kDiurnal:
      return std::max(spec.low_rps, spec.high_rps);
    case LoadKind::kFlash:
      return spec.base_rps * std::max(spec.flash_mult, 1.0);
  }
  throw std::invalid_argument("peak_rate: unknown load kind");
}

std::vector<std::uint64_t> sample_arrivals(const LoadShapeSpec& spec,
                                           std::size_t count, Rng& rng) {
  const double peak = peak_rate(spec);
  if (!(peak > 0.0))
    throw std::invalid_argument("sample_arrivals: peak rate must be > 0");
  if (spec.kind == LoadKind::kDiurnal && spec.period_us == 0)
    throw std::invalid_argument("sample_arrivals: zero diurnal period");
  const double mean_gap_us = 1e6 / peak;
  std::vector<std::uint64_t> arrivals;
  arrivals.reserve(count);
  std::uint64_t vt = 0;
  while (arrivals.size() < count) {
    const double gap = -std::log(1.0 - rng.uniform()) * mean_gap_us;
    vt += static_cast<std::uint64_t>(
        std::max<long long>(std::llround(gap), 1));
    // Thinning: keep the candidate with probability rate/peak. One uniform
    // draw per candidate, accepted or not, keeps the stream reproducible.
    if (rng.uniform() * peak <= rate_at(spec, vt)) arrivals.push_back(vt);
  }
  return arrivals;
}

}  // namespace generic::chaos
