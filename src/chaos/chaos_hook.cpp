#include "chaos/chaos_hook.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "obs/rtrace.h"

namespace generic::chaos {

namespace rtrace = obs::rtrace;

ChaosHook::ChaosHook(serve::ModelLifecycle* inner,
                     std::shared_ptr<const model::HdcClassifier> initial,
                     std::vector<FaultBurst> bursts, std::uint64_t seed)
    : inner_(inner),
      current_(std::move(initial)),
      bursts_(std::move(bursts)),
      seed_(seed) {
  if (!current_)
    throw std::invalid_argument("ChaosHook: initial model is null");
  std::sort(bursts_.begin(), bursts_.end(),
            [](const FaultBurst& a, const FaultBurst& b) {
              return a.vt_us < b.vt_us;
            });
}

void ChaosHook::observe(const serve::ServedObservation& obs) {
  if (inner_) inner_->observe(obs);
}

std::optional<serve::ModelUpdate> ChaosHook::poll(std::uint64_t now) {
  // Drain the inner lifecycle first so its updates and our bursts can be
  // delivered in virtual-time order below.
  if (inner_) {
    while (auto upd = inner_->poll(now)) pending_inner_.push_back(*upd);
  }

  const bool burst_due =
      next_burst_ < bursts_.size() && bursts_[next_burst_].vt_us <= now;
  const bool inner_first =
      !pending_inner_.empty() &&
      (!burst_due ||
       pending_inner_.front().vt <= bursts_[next_burst_].vt_us);

  if (inner_first) {
    serve::ModelUpdate upd = pending_inner_.front();
    pending_inner_.pop_front();
    if (upd.model) current_ = upd.model;
    return upd;
  }
  if (!burst_due) return std::nullopt;

  const FaultBurst& burst = bursts_[next_burst_];
  // Per-burst rng stream: the fault pattern depends only on (seed, index).
  Rng rng(seed_ ^ (0x9E3779B97F4A7C15ULL * (next_burst_ + 1)));

  auto corrupted = std::make_shared<model::HdcClassifier>(*current_);
  BurstRecord rec;
  rec.scheduled_vt_us = burst.vt_us;
  rec.fired_vt_us = now;
  rec.version = kChaosVersionBase + next_burst_;
  rec.fault = burst.fault;
  if (burst.fault.kind == resilience::FaultKind::kBankCorrelated) {
    // Sample then inject with the continuing rng — the exact sequence
    // inject() draws — so the record's bank list is the ground truth.
    rec.banks = resilience::sample_faulty_banks(burst.fault.rate, rng);
    resilience::inject_bank_correlated(*corrupted, rec.banks,
                                       burst.fault.burst_rate, rng);
  } else {
    resilience::inject(*corrupted, burst.fault, rng);
  }
  current_ = corrupted;
  fired_.push_back(rec);
  rtrace::record(rtrace::EventKind::kFaultInject, now, rtrace::kNoRequest,
                 rec.version, 0, static_cast<std::int64_t>(next_burst_));
  ++next_burst_;

  serve::ModelUpdate upd;
  upd.model = std::move(corrupted);
  upd.version = rec.version;
  upd.vt = burst.vt_us;
  upd.rollback = false;
  return upd;
}

}  // namespace generic::chaos
