// General HDC operations on top of the core hypervector types — the
// library-level algebra a torchhd-style consumer expects, kept separate
// from the minimal kernel set the GENERIC datapath itself needs.
#pragma once

#include <span>
#include <vector>

#include "hdc/hypervector.h"

namespace generic::hdc {

/// Sign-threshold a bundled hypervector back into binary space:
/// bit_i = (v_i >= threshold). The standard bundling "clip" step.
BinaryHV threshold(const IntHV& v, std::int32_t threshold = 0);

/// Majority vote across a set of binary hypervectors (ties resolve to 1,
/// matching threshold()'s >= convention). Equivalent to bundling all
/// members and thresholding at zero.
BinaryHV majority(std::span<const BinaryHV> members);

/// Accumulate with an integer weight: acc += weight * bipolar(hv).
/// weight = +-1 reproduces BinaryHV::accumulate_into.
void weighted_accumulate(IntHV& acc, const BinaryHV& hv, std::int32_t weight);

/// Normalized Hamming similarity in [-1, 1]: 1 - 2*hamming/D. Equals the
/// bipolar dot product divided by D, i.e. the cosine of two binary HVs.
double hamming_similarity(const BinaryHV& a, const BinaryHV& b);

/// Sequence binding: fold a sequence of symbols into one hypervector by
/// XOR of progressively permuted elements — rho^(n-1)(s_0) ^ ... ^ s_{n-1}
/// — the n-gram kernel as a standalone op.
BinaryHV bind_sequence(std::span<const BinaryHV> symbols);

// ---- Blocked similarity kernels -------------------------------------------
//
// The XOR+popcount distance is the hot inner loop of every binary-model
// similarity search. These variants process 64-bit words with
// std::popcount over cache-sized tiles (kHammingTileWords words, 32 KiB
// per operand) so a query tile stays L1/L2-resident while it is streamed
// against many reference rows. Results are exact — identical to
// BinaryHV::hamming for every dimensionality, including non-multiple-of-64
// tails (BinaryHV keeps its last word masked).

/// Words per tile of the blocked kernels: 32 KiB of packed bits.
inline constexpr std::size_t kHammingTileWords = 4096;

/// Tiled XOR+popcount Hamming distance; == a.hamming(b) for all dims.
std::size_t hamming_blocked(const BinaryHV& a, const BinaryHV& b);

/// Hamming distance of `query` against every reference row, tiled so each
/// query tile is reused across all rows before moving on. out[i] ==
/// query.hamming(refs[i]).
std::vector<std::size_t> hamming_many(const BinaryHV& query,
                                      std::span<const BinaryHV> refs);

/// Index of the reference row nearest to `query` in Hamming distance; ties
/// resolve to the lowest index (the deterministic argmin every batched
/// consumer relies on). refs must be non-empty.
std::size_t nearest_hamming(const BinaryHV& query,
                            std::span<const BinaryHV> refs);

}  // namespace generic::hdc
