// General HDC operations on top of the core hypervector types — the
// library-level algebra a torchhd-style consumer expects, kept separate
// from the minimal kernel set the GENERIC datapath itself needs.
#pragma once

#include <span>

#include "hdc/hypervector.h"

namespace generic::hdc {

/// Sign-threshold a bundled hypervector back into binary space:
/// bit_i = (v_i >= threshold). The standard bundling "clip" step.
BinaryHV threshold(const IntHV& v, std::int32_t threshold = 0);

/// Majority vote across a set of binary hypervectors (ties resolve to 1,
/// matching threshold()'s >= convention). Equivalent to bundling all
/// members and thresholding at zero.
BinaryHV majority(std::span<const BinaryHV> members);

/// Accumulate with an integer weight: acc += weight * bipolar(hv).
/// weight = +-1 reproduces BinaryHV::accumulate_into.
void weighted_accumulate(IntHV& acc, const BinaryHV& hv, std::int32_t weight);

/// Normalized Hamming similarity in [-1, 1]: 1 - 2*hamming/D. Equals the
/// bipolar dot product divided by D, i.e. the cosine of two binary HVs.
double hamming_similarity(const BinaryHV& a, const BinaryHV& b);

/// Sequence binding: fold a sequence of symbols into one hypervector by
/// XOR of progressively permuted elements — rho^(n-1)(s_0) ^ ... ^ s_{n-1}
/// — the n-gram kernel as a standalone op.
BinaryHV bind_sequence(std::span<const BinaryHV> symbols);

}  // namespace generic::hdc
