#include "hdc/hypervector.h"

#include <cmath>
#include <stdexcept>

namespace generic::hdc {

BinaryHV BinaryHV::random(std::size_t dims, Rng& rng) {
  BinaryHV hv(dims);
  for (auto& w : hv.words_) w = rng.next_u64();
  hv.mask_tail();
  return hv;
}

void BinaryHV::mask_tail() {
  const std::size_t rem = dims_ % kWordBits;
  if (rem != 0 && !words_.empty()) words_.back() &= low_mask(rem);
}

BinaryHV& BinaryHV::operator^=(const BinaryHV& other) {
  if (other.dims_ != dims_)
    throw std::invalid_argument("BinaryHV xor: dimension mismatch");
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] ^= other.words_[i];
  return *this;
}

std::size_t BinaryHV::popcount() const {
  std::size_t total = 0;
  for (std::uint64_t w : words_) total += static_cast<std::size_t>(popcount64(w));
  return total;
}

std::size_t BinaryHV::hamming(const BinaryHV& other) const {
  if (other.dims_ != dims_)
    throw std::invalid_argument("BinaryHV hamming: dimension mismatch");
  std::size_t total = 0;
  for (std::size_t i = 0; i < words_.size(); ++i)
    total += static_cast<std::size_t>(popcount64(words_[i] ^ other.words_[i]));
  return total;
}

std::int64_t BinaryHV::dot(const BinaryHV& other) const {
  return static_cast<std::int64_t>(dims_) -
         2 * static_cast<std::int64_t>(hamming(other));
}

BinaryHV BinaryHV::rotated(std::size_t k) const {
  BinaryHV out(dims_);
  if (dims_ == 0) return out;
  k %= dims_;
  if (k == 0) return *this;
  // For word-aligned dims (the common case: D is a multiple of 64) rotate
  // whole words then shift; the generic path handles ragged tails bit-wise.
  if (dims_ % kWordBits == 0) {
    const std::size_t nw = words_.size();
    const std::size_t word_shift = k / kWordBits;
    const std::size_t bit_shift = k % kWordBits;
    for (std::size_t i = 0; i < nw; ++i) {
      const std::uint64_t w = words_[i];
      const std::size_t lo_pos = (i + word_shift) % nw;
      if (bit_shift == 0) {
        out.words_[lo_pos] |= w;
      } else {
        out.words_[lo_pos] |= w << bit_shift;
        out.words_[(lo_pos + 1) % nw] |= w >> (kWordBits - bit_shift);
      }
    }
    return out;
  }
  for (std::size_t i = 0; i < dims_; ++i)
    if (bit(i)) out.set((i + k) % dims_, true);
  return out;
}

void BinaryHV::accumulate_into(IntHV& acc, int sign) const {
  if (acc.size() != dims_)
    throw std::invalid_argument("accumulate_into: dimension mismatch");
  // Bipolar value is 2*bit - 1; the inner loop is written per-word so the
  // compiler can vectorize the bit test.
  for (std::size_t w = 0; w < words_.size(); ++w) {
    std::uint64_t word = words_[w];
    const std::size_t base = w * kWordBits;
    const std::size_t n = std::min(kWordBits, dims_ - base);
    for (std::size_t b = 0; b < n; ++b) {
      const int bitv = static_cast<int>((word >> b) & 1ULL);
      acc[base + b] += sign * (2 * bitv - 1);
    }
  }
}

IntHV BinaryHV::to_int() const {
  IntHV out(dims_, 0);
  accumulate_into(out, +1);
  return out;
}

std::int64_t dot(const IntHV& a, const IntHV& b) {
  if (a.size() != b.size()) throw std::invalid_argument("dot: size mismatch");
  std::int64_t acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i)
    acc += static_cast<std::int64_t>(a[i]) * b[i];
  return acc;
}

std::int64_t dot(const IntHV& a, const BinaryHV& b) {
  if (a.size() != b.dims())
    throw std::invalid_argument("dot(int,binary): size mismatch");
  // sum_i a_i * (2 b_i - 1) = 2 * sum_{i: b_i=1} a_i - sum_i a_i.
  std::int64_t sum_all = 0;
  std::int64_t sum_set = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    sum_all += a[i];
    if (b.bit(i)) sum_set += a[i];
  }
  return 2 * sum_set - sum_all;
}

std::int64_t norm2(const IntHV& a) {
  std::int64_t acc = 0;
  for (std::int32_t v : a) acc += static_cast<std::int64_t>(v) * v;
  return acc;
}

double cosine(const IntHV& a, const IntHV& b) {
  const std::int64_t na = norm2(a);
  const std::int64_t nb = norm2(b);
  if (na == 0 || nb == 0) return 0.0;
  return static_cast<double>(dot(a, b)) /
         (std::sqrt(static_cast<double>(na)) * std::sqrt(static_cast<double>(nb)));
}

void add_into(IntHV& acc, const IntHV& x, int sign) {
  if (acc.size() != x.size())
    throw std::invalid_argument("add_into: size mismatch");
  for (std::size_t i = 0; i < acc.size(); ++i) acc[i] += sign * x[i];
}

}  // namespace generic::hdc
