// Item and level memories (paper §2.2 and Figure 2(a)).
//
// ItemMemory holds independent random "id" hypervectors, one per key
// (feature index / window index / n-gram symbol). LevelMemory holds the
// level hypervectors of quantized scalar values, constructed so that the
// Hamming distance between levels is proportional to the difference of the
// values they represent: level 0 is random, and each successive level flips
// a fresh batch of D/2/(L-1) positions, so level 0 and level L-1 end up
// ~orthogonal while nearby levels stay similar — "meaningful distance ...
// is preserved" in the paper's words.
//
// Both memories are pure functions of (seed, dims, key): every row can be
// rebuilt on demand instead of stored. ItemStorage::kRematerialized opts a
// memory into that mode (Schmuck/Benini/Rahimi's seed-regeneration trick,
// PAPERS.md): footprint_bytes() drops to zero and materialize() recomputes
// rows bit-identically to what the stored table would hold, trading memory
// for recompute — measured in bench/kernels.
//
// SeededItemMemory mirrors the ASIC's id-memory compression (§4.3.1): ids
// are not stored but generated on the fly by permuting a single seed id by
// k positions. Permutation preserves orthogonality, shrinking 512 KB of id
// storage to one 4 Kbit seed row.
#pragma once

#include <cstddef>
#include <deque>
#include <mutex>
#include <vector>

#include "common/rng.h"
#include "hdc/hypervector.h"

namespace generic::hdc {

/// How an item/level memory keeps its rows. kStored materializes each row
/// once and serves stable references; kRematerialized stores nothing and
/// regenerates rows from the seed on every access (bit-identical rows,
/// zero footprint, recompute cost per access).
enum class ItemStorage {
  kStored,
  kRematerialized,
};

/// Table of independent random hypervectors, lazily generated but
/// deterministic in (seed, key). get() is safe to call from concurrent
/// encode_batch workers: growth happens under a lock and entry k is always
/// drawn from stream seed+k, so the table contents never depend on which
/// thread faulted an entry in first.
class ItemMemory {
 public:
  ItemMemory(std::size_t dims, std::uint64_t seed,
             ItemStorage storage = ItemStorage::kStored);

  /// Hypervector for `key`; generated on first use. Stored mode only (a
  /// rematerialized memory has no stable row to reference — throws
  /// std::logic_error; use materialize()).
  const BinaryHV& get(std::size_t key) const;

  /// Rebuild the row for `key` from the seed. Works in both modes and is
  /// bit-identical to what get() returns / would return.
  BinaryHV materialize(std::size_t key) const;

  /// acc ^= row(key), without requiring a stable stored row. The binding
  /// step every id-using encoder performs, mode-agnostic.
  void xor_row_into(std::size_t key, BinaryHV& acc) const;

  /// Bytes of hypervector payload currently held (stored rows so far);
  /// zero in rematerialized mode.
  std::size_t footprint_bytes() const;

  /// Mutable access for fault injection (resilience::inject): corrupting
  /// the stored id models a defective item-memory row. Stored mode only.
  BinaryHV& mutable_get(std::size_t key) {
    return const_cast<BinaryHV&>(get(key));
  }

  ItemStorage storage() const { return storage_; }
  std::size_t dims() const { return dims_; }

 private:
  std::size_t dims_;
  std::uint64_t seed_;
  ItemStorage storage_;
  // deque: growing the table must not invalidate references handed out by
  // get() — callers hold them across further lookups.
  mutable std::mutex mu_;
  mutable std::deque<BinaryHV> table_;
};

/// Distance-preserving level hypervectors for quantized scalars.
class LevelMemory {
 public:
  LevelMemory(std::size_t dims, std::size_t levels, std::uint64_t seed,
              ItemStorage storage = ItemStorage::kStored);

  /// Stored mode only (throws std::logic_error in rematerialized mode —
  /// use materialize()).
  const BinaryHV& level(std::size_t bin) const;

  /// Rebuild level `bin` from (seed, dims, levels): base row plus the
  /// first total_flips*bin/(levels-1) flips of the shuffled flip order.
  /// Bit-identical to the stored row in either mode.
  BinaryHV materialize(std::size_t bin) const;

  /// Bytes of level payload held; zero in rematerialized mode.
  std::size_t footprint_bytes() const;

  /// Mutable access for fault injection into a level row. Stored mode only.
  BinaryHV& mutable_level(std::size_t bin);

  ItemStorage storage() const { return storage_; }
  std::size_t num_levels() const { return num_levels_; }
  std::size_t dims() const { return dims_; }

 private:
  std::size_t dims_;
  std::size_t num_levels_;
  std::uint64_t seed_;
  ItemStorage storage_;
  std::vector<BinaryHV> levels_;
};

/// The ASIC's compressed id scheme: id_k = rho^k(seed_id). Always
/// rematerialized by construction — only the seed row is stored.
class SeededItemMemory {
 public:
  SeededItemMemory(std::size_t dims, std::uint64_t seed);

  /// id for window index k, generated by rotating the seed id.
  BinaryHV get(std::size_t k) const { return seed_id_.rotated(k); }

  /// Bytes held: the one seed row.
  std::size_t footprint_bytes() const {
    return seed_id_.num_words() * sizeof(std::uint64_t);
  }

  const BinaryHV& seed_id() const { return seed_id_; }
  /// Mutable access for fault injection: a corrupted seed id corrupts the
  /// same bit of *every* generated id (the §4.3.1 compression's one
  /// single point of failure).
  BinaryHV& mutable_seed_id() { return seed_id_; }

 private:
  BinaryHV seed_id_;
};

}  // namespace generic::hdc
