// AVX-512 backend: native vpopcntq over 512-bit lanes.
//
// Requires AVX512F + AVX512VPOPCNTDQ (Ice Lake and later; dispatch checks
// both at runtime). The many-rows kernel interleaves two reference rows per
// pass so each 512-bit query load is amortized across two XOR+popcount
// chains — that, not the popcount itself, is where the wins over scalar
// come from at typical 64-word (4096-dim) rows. Exact integer sums, so
// bit-identical to the scalar reference by construction.
//
// This TU is compiled with -mavx512f -mavx512vpopcntdq (see
// src/hdc/CMakeLists.txt).
#include "hdc/kernels_detail.h"

#if defined(GENERIC_KERNELS_HAVE_AVX512)

#include <immintrin.h>

#include <bit>
#include <cstddef>
#include <cstdint>

namespace generic::hdc::kernels::detail {

namespace {

std::size_t avx512_xor_popcount(const std::uint64_t* a, const std::uint64_t* b,
                                std::size_t n) {
  __m512i t0 = _mm512_setzero_si512();
  __m512i t1 = _mm512_setzero_si512();
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m512i x0 = _mm512_xor_si512(_mm512_loadu_si512(a + i),
                                        _mm512_loadu_si512(b + i));
    const __m512i x1 = _mm512_xor_si512(_mm512_loadu_si512(a + i + 8),
                                        _mm512_loadu_si512(b + i + 8));
    t0 = _mm512_add_epi64(t0, _mm512_popcnt_epi64(x0));
    t1 = _mm512_add_epi64(t1, _mm512_popcnt_epi64(x1));
  }
  for (; i + 8 <= n; i += 8) {
    const __m512i x = _mm512_xor_si512(_mm512_loadu_si512(a + i),
                                       _mm512_loadu_si512(b + i));
    t0 = _mm512_add_epi64(t0, _mm512_popcnt_epi64(x));
  }
  std::size_t s = static_cast<std::size_t>(_mm512_reduce_add_epi64(t0)) +
                  static_cast<std::size_t>(_mm512_reduce_add_epi64(t1));
  for (; i < n; ++i)
    s += static_cast<std::size_t>(std::popcount(a[i] ^ b[i]));
  return s;
}

void avx512_xor_popcount_many(const std::uint64_t* q,
                              const std::uint64_t* const* refs,
                              std::size_t rows, std::size_t words,
                              std::size_t* out) {
  std::size_t r = 0;
  for (; r + 2 <= rows; r += 2) {
    const std::uint64_t* b0 = refs[r];
    const std::uint64_t* b1 = refs[r + 1];
    __m512i t0 = _mm512_setzero_si512();
    __m512i t1 = _mm512_setzero_si512();
    std::size_t i = 0;
    for (; i + 8 <= words; i += 8) {
      const __m512i vq = _mm512_loadu_si512(q + i);
      t0 = _mm512_add_epi64(
          t0, _mm512_popcnt_epi64(
                  _mm512_xor_si512(vq, _mm512_loadu_si512(b0 + i))));
      t1 = _mm512_add_epi64(
          t1, _mm512_popcnt_epi64(
                  _mm512_xor_si512(vq, _mm512_loadu_si512(b1 + i))));
    }
    std::size_t s0 = static_cast<std::size_t>(_mm512_reduce_add_epi64(t0));
    std::size_t s1 = static_cast<std::size_t>(_mm512_reduce_add_epi64(t1));
    for (; i < words; ++i) {
      s0 += static_cast<std::size_t>(std::popcount(q[i] ^ b0[i]));
      s1 += static_cast<std::size_t>(std::popcount(q[i] ^ b1[i]));
    }
    out[r] += s0;
    out[r + 1] += s1;
  }
  for (; r < rows; ++r) out[r] += avx512_xor_popcount(q, refs[r], words);
}

}  // namespace

const Kernels& avx512_table() {
  static const Kernels k{Backend::kAvx512, "avx512", &avx512_xor_popcount,
                         &avx512_xor_popcount_many};
  return k;
}

}  // namespace generic::hdc::kernels::detail

#endif  // GENERIC_KERNELS_HAVE_AVX512
