#include "hdc/item_memory.h"

#include <stdexcept>

namespace generic::hdc {

ItemMemory::ItemMemory(std::size_t dims, std::uint64_t seed)
    : dims_(dims), seed_(seed) {}

const BinaryHV& ItemMemory::get(std::size_t key) const {
  // The lock covers both the growth and the read: deque::push_back never
  // invalidates existing elements, but indexing concurrently with growth is
  // still a data race. Returned references stay valid after unlock.
  std::lock_guard<std::mutex> lock(mu_);
  if (key >= table_.size()) {
    // Extend deterministically: entry k always comes from stream seed_+k,
    // independent of access order.
    for (std::size_t k = table_.size(); k <= key; ++k) {
      Rng rng(seed_ ^ (0xC0FFEEULL + k * 0x9E3779B97F4A7C15ULL));
      table_.push_back(BinaryHV::random(dims_, rng));
    }
  }
  return table_[key];
}

LevelMemory::LevelMemory(std::size_t dims, std::size_t levels,
                         std::uint64_t seed)
    : dims_(dims) {
  if (levels == 0) throw std::invalid_argument("LevelMemory: levels == 0");
  Rng rng(seed);
  levels_.reserve(levels);
  levels_.push_back(BinaryHV::random(dims, rng));
  if (levels == 1) return;
  // Flip a disjoint batch of positions per step; after L-1 steps exactly
  // dims/2 positions have flipped, making the extreme levels ~orthogonal.
  std::vector<std::size_t> order(dims);
  for (std::size_t i = 0; i < dims; ++i) order[i] = i;
  rng.shuffle(order);
  const std::size_t total_flips = dims / 2;
  std::size_t cursor = 0;
  for (std::size_t l = 1; l < levels; ++l) {
    BinaryHV next = levels_.back();
    // Distribute total_flips as evenly as possible across the steps.
    const std::size_t target = total_flips * l / (levels - 1);
    for (; cursor < target && cursor < dims; ++cursor) next.flip(order[cursor]);
    levels_.push_back(std::move(next));
  }
}

SeededItemMemory::SeededItemMemory(std::size_t dims, std::uint64_t seed) {
  Rng rng(seed ^ 0x1D5EEDULL);
  seed_id_ = BinaryHV::random(dims, rng);
}

}  // namespace generic::hdc
