#include "hdc/item_memory.h"

#include <stdexcept>

namespace generic::hdc {

ItemMemory::ItemMemory(std::size_t dims, std::uint64_t seed,
                       ItemStorage storage)
    : dims_(dims), seed_(seed), storage_(storage) {}

const BinaryHV& ItemMemory::get(std::size_t key) const {
  if (storage_ == ItemStorage::kRematerialized)
    throw std::logic_error(
        "ItemMemory::get: rematerialized memory has no stored rows; use "
        "materialize()");
  // The lock covers both the growth and the read: deque::push_back never
  // invalidates existing elements, but indexing concurrently with growth is
  // still a data race. Returned references stay valid after unlock.
  std::lock_guard<std::mutex> lock(mu_);
  if (key >= table_.size()) {
    // Extend deterministically: entry k always comes from stream seed_+k,
    // independent of access order.
    for (std::size_t k = table_.size(); k <= key; ++k) {
      Rng rng(seed_ ^ (0xC0FFEEULL + k * 0x9E3779B97F4A7C15ULL));
      table_.push_back(BinaryHV::random(dims_, rng));
    }
  }
  return table_[key];
}

BinaryHV ItemMemory::materialize(std::size_t key) const {
  // The exact generation rule get() uses to fill the table: row k is a pure
  // function of (seed, k), never of access order or storage mode.
  Rng rng(seed_ ^ (0xC0FFEEULL + key * 0x9E3779B97F4A7C15ULL));
  return BinaryHV::random(dims_, rng);
}

void ItemMemory::xor_row_into(std::size_t key, BinaryHV& acc) const {
  if (storage_ == ItemStorage::kStored)
    acc ^= get(key);
  else
    acc ^= materialize(key);
}

std::size_t ItemMemory::footprint_bytes() const {
  if (storage_ == ItemStorage::kRematerialized) return 0;
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t bytes = 0;
  for (const auto& hv : table_) bytes += hv.num_words() * sizeof(std::uint64_t);
  return bytes;
}

LevelMemory::LevelMemory(std::size_t dims, std::size_t levels,
                         std::uint64_t seed, ItemStorage storage)
    : dims_(dims), num_levels_(levels), seed_(seed), storage_(storage) {
  if (levels == 0) throw std::invalid_argument("LevelMemory: levels == 0");
  if (storage_ == ItemStorage::kRematerialized) return;
  Rng rng(seed);
  levels_.reserve(levels);
  levels_.push_back(BinaryHV::random(dims, rng));
  if (levels == 1) return;
  // Flip a disjoint batch of positions per step; after L-1 steps exactly
  // dims/2 positions have flipped, making the extreme levels ~orthogonal.
  std::vector<std::size_t> order(dims);
  for (std::size_t i = 0; i < dims; ++i) order[i] = i;
  rng.shuffle(order);
  const std::size_t total_flips = dims / 2;
  std::size_t cursor = 0;
  for (std::size_t l = 1; l < levels; ++l) {
    BinaryHV next = levels_.back();
    // Distribute total_flips as evenly as possible across the steps.
    const std::size_t target = total_flips * l / (levels - 1);
    for (; cursor < target && cursor < dims; ++cursor) next.flip(order[cursor]);
    levels_.push_back(std::move(next));
  }
}

const BinaryHV& LevelMemory::level(std::size_t bin) const {
  if (storage_ == ItemStorage::kRematerialized)
    throw std::logic_error(
        "LevelMemory::level: rematerialized memory has no stored rows; use "
        "materialize()");
  return levels_.at(bin);
}

BinaryHV& LevelMemory::mutable_level(std::size_t bin) {
  if (storage_ == ItemStorage::kRematerialized)
    throw std::logic_error(
        "LevelMemory::mutable_level: rematerialized memory has no stored "
        "rows");
  return levels_.at(bin);
}

BinaryHV LevelMemory::materialize(std::size_t bin) const {
  if (bin >= num_levels_)
    throw std::out_of_range("LevelMemory::materialize: bin out of range");
  // Replay the construction rule up to `bin`: same rng stream, same shuffled
  // flip order, same flip count, so the row is bit-identical to what the
  // stored table holds for this (seed, dims, levels).
  Rng rng(seed_);
  BinaryHV row = BinaryHV::random(dims_, rng);
  if (bin == 0 || num_levels_ == 1) return row;
  std::vector<std::size_t> order(dims_);
  for (std::size_t i = 0; i < dims_; ++i) order[i] = i;
  rng.shuffle(order);
  const std::size_t total_flips = dims_ / 2;
  const std::size_t target = total_flips * bin / (num_levels_ - 1);
  for (std::size_t cursor = 0; cursor < target && cursor < dims_; ++cursor)
    row.flip(order[cursor]);
  return row;
}

std::size_t LevelMemory::footprint_bytes() const {
  std::size_t bytes = 0;
  for (const auto& hv : levels_) bytes += hv.num_words() * sizeof(std::uint64_t);
  return bytes;
}

SeededItemMemory::SeededItemMemory(std::size_t dims, std::uint64_t seed) {
  Rng rng(seed ^ 0x1D5EEDULL);
  seed_id_ = BinaryHV::random(dims, rng);
}

}  // namespace generic::hdc
