#include "hdc/ops.h"

#include <stdexcept>

namespace generic::hdc {

BinaryHV threshold(const IntHV& v, std::int32_t thresh) {
  BinaryHV out(v.size());
  for (std::size_t i = 0; i < v.size(); ++i)
    if (v[i] >= thresh) out.set(i, true);
  return out;
}

BinaryHV majority(std::span<const BinaryHV> members) {
  if (members.empty()) throw std::invalid_argument("majority: empty set");
  IntHV acc(members.front().dims(), 0);
  for (const auto& m : members) m.accumulate_into(acc);
  return threshold(acc, 0);
}

void weighted_accumulate(IntHV& acc, const BinaryHV& hv, std::int32_t weight) {
  if (acc.size() != hv.dims())
    throw std::invalid_argument("weighted_accumulate: dimension mismatch");
  if (weight == 0) return;
  for (std::size_t i = 0; i < acc.size(); ++i)
    acc[i] += weight * hv.bipolar(i);
}

double hamming_similarity(const BinaryHV& a, const BinaryHV& b) {
  if (a.dims() == 0) throw std::invalid_argument("hamming_similarity: empty");
  return 1.0 - 2.0 * static_cast<double>(a.hamming(b)) /
                   static_cast<double>(a.dims());
}

BinaryHV bind_sequence(std::span<const BinaryHV> symbols) {
  if (symbols.empty()) throw std::invalid_argument("bind_sequence: empty");
  const std::size_t n = symbols.size();
  BinaryHV out = symbols[n - 1];
  for (std::size_t i = n - 1; i-- > 0;)
    out ^= symbols[i].rotated(n - 1 - i);
  return out;
}

}  // namespace generic::hdc
