#include "hdc/ops.h"

#include <algorithm>
#include <stdexcept>

#include "hdc/kernels.h"
#include "obs/obs.h"

namespace generic::hdc {

BinaryHV threshold(const IntHV& v, std::int32_t thresh) {
  BinaryHV out(v.size());
  for (std::size_t i = 0; i < v.size(); ++i)
    if (v[i] >= thresh) out.set(i, true);
  return out;
}

BinaryHV majority(std::span<const BinaryHV> members) {
  if (members.empty()) throw std::invalid_argument("majority: empty set");
  IntHV acc(members.front().dims(), 0);
  for (const auto& m : members) m.accumulate_into(acc);
  return threshold(acc, 0);
}

void weighted_accumulate(IntHV& acc, const BinaryHV& hv, std::int32_t weight) {
  if (acc.size() != hv.dims())
    throw std::invalid_argument("weighted_accumulate: dimension mismatch");
  if (weight == 0) return;
  for (std::size_t i = 0; i < acc.size(); ++i)
    acc[i] += weight * hv.bipolar(i);
}

double hamming_similarity(const BinaryHV& a, const BinaryHV& b) {
  if (a.dims() == 0) throw std::invalid_argument("hamming_similarity: empty");
  return 1.0 - 2.0 * static_cast<double>(a.hamming(b)) /
                   static_cast<double>(a.dims());
}

BinaryHV bind_sequence(std::span<const BinaryHV> symbols) {
  if (symbols.empty()) throw std::invalid_argument("bind_sequence: empty");
  const std::size_t n = symbols.size();
  BinaryHV out = symbols[n - 1];
  for (std::size_t i = n - 1; i-- > 0;)
    out ^= symbols[i].rotated(n - 1 - i);
  return out;
}

std::size_t hamming_blocked(const BinaryHV& a, const BinaryHV& b) {
  if (a.dims() != b.dims())
    throw std::invalid_argument("hamming_blocked: dimension mismatch");
  GENERIC_COUNTER_ADD("ops.hamming.calls", 1);
  GENERIC_COUNTER_ADD("ops.hamming.rows", 1);
  const kernels::Kernels& k = kernels::active();
  const auto wa = a.words();
  const auto wb = b.words();
  std::size_t total = 0;
  for (std::size_t t = 0; t < wa.size(); t += kHammingTileWords) {
    const std::size_t len = std::min(kHammingTileWords, wa.size() - t);
    total += k.xor_popcount(wa.data() + t, wb.data() + t, len);
  }
  return total;
}

std::vector<std::size_t> hamming_many(const BinaryHV& query,
                                      std::span<const BinaryHV> refs) {
  // Validate before touching any row: a mismatched ref list must throw up
  // front, never return a partial (or, for an empty query, all-zero) result.
  for (const auto& ref : refs)
    if (ref.dims() != query.dims())
      throw std::invalid_argument("hamming_many: dimension mismatch");
  GENERIC_COUNTER_ADD("ops.hamming.calls", 1);
  GENERIC_COUNTER_ADD("ops.hamming.rows", refs.size());
  std::vector<std::size_t> out(refs.size(), 0);
  if (refs.empty() || query.words().empty()) return out;
  const kernels::Kernels& k = kernels::active();
  const auto qw = query.words();
  std::vector<const std::uint64_t*> rows(refs.size());
  // Tile-major: one query tile is streamed against every row before the
  // next tile is touched, so the query words stay cache-resident even when
  // refs holds thousands of rows.
  for (std::size_t t = 0; t < qw.size(); t += kHammingTileWords) {
    const std::size_t len = std::min(kHammingTileWords, qw.size() - t);
    for (std::size_t r = 0; r < refs.size(); ++r)
      rows[r] = refs[r].words().data() + t;
    k.xor_popcount_many(qw.data() + t, rows.data(), rows.size(), len,
                        out.data());
  }
  return out;
}

std::size_t nearest_hamming(const BinaryHV& query,
                            std::span<const BinaryHV> refs) {
  if (refs.empty()) throw std::invalid_argument("nearest_hamming: empty");
  GENERIC_COUNTER_ADD("ops.nearest.calls", 1);
  const auto dists = hamming_many(query, refs);
  std::size_t best = 0;
  for (std::size_t r = 1; r < dists.size(); ++r)
    if (dists[r] < dists[best]) best = r;
  return best;
}

}  // namespace generic::hdc
