// Hypervector types for hyperdimensional computing (paper §2).
//
// Two representations are used throughout the library, mirroring the two
// domains of the GENERIC datapath:
//  * BinaryHV  — a D-dimensional bipolar (+1/-1) hypervector bit-packed into
//    64-bit words (bit 1 == +1, bit 0 == -1). Item/level/id hypervectors and
//    per-window encodings live here; binding is XOR, permutation is a
//    circular shift, dot products reduce to popcounts.
//  * IntHV     — a vector of 32-bit integers holding bundled (element-wise
//    summed) hypervectors: encoded inputs and class/centroid accumulators.
//    The ASIC stores class dimensions in 16 bits (§4.3.4); quantization to
//    narrower widths is modelled in model/hdc_classifier.
#pragma once

#include <cstdint>
#include <cstddef>
#include <span>
#include <vector>

#include "common/bitops.h"
#include "common/rng.h"

namespace generic::hdc {

using IntHV = std::vector<std::int32_t>;

class BinaryHV {
 public:
  BinaryHV() = default;

  /// All-zero (-1 in bipolar terms) hypervector of `dims` dimensions.
  explicit BinaryHV(std::size_t dims)
      : dims_(dims), words_(words_for_bits(dims), 0ULL) {}

  /// Uniformly random hypervector.
  static BinaryHV random(std::size_t dims, Rng& rng);

  std::size_t dims() const { return dims_; }
  std::size_t num_words() const { return words_.size(); }
  std::span<const std::uint64_t> words() const { return words_; }
  std::span<std::uint64_t> words() { return words_; }

  bool bit(std::size_t i) const { return get_bit(words_.data(), i); }
  void set(std::size_t i, bool v) { set_bit(words_.data(), i, v); }
  void flip(std::size_t i) { flip_bit(words_.data(), i); }

  /// Bipolar value of dimension i: +1 or -1.
  int bipolar(std::size_t i) const { return bit(i) ? 1 : -1; }

  /// Element-wise XOR (bipolar multiplication / binding).
  BinaryHV& operator^=(const BinaryHV& other);
  friend BinaryHV operator^(BinaryHV a, const BinaryHV& b) { return a ^= b; }

  bool operator==(const BinaryHV& other) const = default;

  /// Number of set bits.
  std::size_t popcount() const;

  /// Hamming distance to another hypervector of the same dimensionality.
  std::size_t hamming(const BinaryHV& other) const;

  /// Bipolar dot product: dims - 2*hamming.
  std::int64_t dot(const BinaryHV& other) const;

  /// Circular rotation towards higher indices by k positions — the HDC
  /// permutation rho^k of the paper (Eq. 1). rho preserves orthogonality
  /// and rho^a . rho^b == rho^(a+b).
  BinaryHV rotated(std::size_t k) const;

  /// Add this hypervector's bipolar values into an integer accumulator
  /// (bundling, +) or subtract them (model update on misprediction, -).
  void accumulate_into(IntHV& acc, int sign = +1) const;

  /// Expand to a bipolar integer vector (+1/-1 per dimension).
  IntHV to_int() const;

 private:
  /// Clear the unused bits of the last word so popcount/equality stay exact.
  void mask_tail();

  std::size_t dims_ = 0;
  std::vector<std::uint64_t> words_;
};

/// Dot product of two bundled hypervectors.
std::int64_t dot(const IntHV& a, const IntHV& b);

/// Dot product of a bundled hypervector with a binary hypervector's
/// bipolar expansion, without materializing the expansion.
std::int64_t dot(const IntHV& a, const BinaryHV& b);

/// Squared L2 norm.
std::int64_t norm2(const IntHV& a);

/// Cosine similarity; 0 when either vector is all-zero.
double cosine(const IntHV& a, const IntHV& b);

/// Element-wise sum / difference helpers for bundling in the int domain.
void add_into(IntHV& acc, const IntHV& x, int sign = +1);

}  // namespace generic::hdc
