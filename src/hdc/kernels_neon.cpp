// NEON backend (aarch64): vcnt per-byte popcount + widening horizontal add.
//
// NEON is baseline on aarch64, so no runtime CPU check is needed — only the
// compile-time gate. vaddlvq_u8 folds the 16 per-byte counts of each
// 128-bit XOR into one u16 (max 128, no saturation possible), keeping the
// kernel simple and exactly equal to the scalar reference. The many-rows
// kernel shares each query load across two rows.
#include "hdc/kernels_detail.h"

#if defined(GENERIC_KERNELS_HAVE_NEON)

#include <arm_neon.h>

#include <bit>
#include <cstddef>
#include <cstdint>

namespace generic::hdc::kernels::detail {

namespace {

inline std::size_t count128(uint64x2_t a, uint64x2_t b) {
  return vaddlvq_u8(vcntq_u8(vreinterpretq_u8_u64(veorq_u64(a, b))));
}

std::size_t neon_xor_popcount(const std::uint64_t* a, const std::uint64_t* b,
                              std::size_t n) {
  std::size_t s0 = 0, s1 = 0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    s0 += count128(vld1q_u64(a + i), vld1q_u64(b + i));
    s1 += count128(vld1q_u64(a + i + 2), vld1q_u64(b + i + 2));
  }
  for (; i + 2 <= n; i += 2)
    s0 += count128(vld1q_u64(a + i), vld1q_u64(b + i));
  for (; i < n; ++i)
    s0 += static_cast<std::size_t>(std::popcount(a[i] ^ b[i]));
  return s0 + s1;
}

void neon_xor_popcount_many(const std::uint64_t* q,
                            const std::uint64_t* const* refs, std::size_t rows,
                            std::size_t words, std::size_t* out) {
  std::size_t r = 0;
  for (; r + 2 <= rows; r += 2) {
    const std::uint64_t* b0 = refs[r];
    const std::uint64_t* b1 = refs[r + 1];
    std::size_t s0 = 0, s1 = 0;
    std::size_t i = 0;
    for (; i + 2 <= words; i += 2) {
      const uint64x2_t vq = vld1q_u64(q + i);
      s0 += count128(vq, vld1q_u64(b0 + i));
      s1 += count128(vq, vld1q_u64(b1 + i));
    }
    for (; i < words; ++i) {
      s0 += static_cast<std::size_t>(std::popcount(q[i] ^ b0[i]));
      s1 += static_cast<std::size_t>(std::popcount(q[i] ^ b1[i]));
    }
    out[r] += s0;
    out[r + 1] += s1;
  }
  for (; r < rows; ++r) out[r] += neon_xor_popcount(q, refs[r], words);
}

}  // namespace

const Kernels& neon_table() {
  static const Kernels k{Backend::kNeon, "neon", &neon_xor_popcount,
                         &neon_xor_popcount_many};
  return k;
}

}  // namespace generic::hdc::kernels::detail

#endif  // GENERIC_KERNELS_HAVE_NEON
