// Runtime-dispatched XOR+popcount kernels — the one place every binary
// similarity search bottoms out (docs/kernels.md).
//
// The blocked scalar kernels in hdc/ops.h are exact integer reductions, so
// any backend that computes the same sums is bit-identical by construction:
// vectorization here can never disturb the determinism contract of
// docs/parallelism.md. What the dispatch layer adds is the choice of HOW
// the popcounts are computed:
//
//   scalar  portable reference: 4-way unrolled hardware popcount, compiled
//           with vectorization disabled so it stays the honest baseline
//   avx2    pshufb nibble-lookup popcount, 8-bit lane accumulation (x86)
//   avx512  vpopcntq over 512-bit lanes, 2-row interleave (x86 + VPOPCNTDQ)
//   neon    vcnt + widening pairwise accumulation (aarch64)
//
// Selection is runtime CPU-feature detection ("auto" picks the best
// available), overridable by the GENERIC_KERNEL_BACKEND environment
// variable or the tools' --kernel-backend flag. Backends not compiled in
// (wrong architecture) or not supported by the host CPU are rejected with
// a clear error rather than silently falling back.
//
// Every backend must be byte-identical to scalar — same distances, same
// argmin winners — which tests/hdc/kernel_equivalence_test.cpp asserts for
// every compiled backend across ragged dimension sweeps.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

namespace generic::hdc::kernels {

enum class Backend {
  kScalar,
  kAvx2,
  kAvx512,
  kNeon,
};

/// The dispatch table one backend fills in. Both entry points are exact:
/// they return the same integers the scalar reference computes.
struct Kernels {
  Backend backend = Backend::kScalar;
  const char* name = "scalar";

  /// popcount(a[i] ^ b[i]) summed over n words.
  std::size_t (*xor_popcount)(const std::uint64_t* a, const std::uint64_t* b,
                              std::size_t n) = nullptr;

  /// out[r] += popcount(q[i] ^ refs[r][i]) over `words` words for each of
  /// `rows` reference rows — the hamming_many/nearest_hamming inner tile,
  /// shaped so a backend can amortize query loads across rows.
  void (*xor_popcount_many)(const std::uint64_t* q,
                            const std::uint64_t* const* refs, std::size_t rows,
                            std::size_t words, std::size_t* out) = nullptr;
};

/// Canonical lower-case name: "scalar", "avx2", "avx512", "neon".
std::string_view to_string(Backend backend);

/// Parse a backend name (as spelled by to_string). "auto" is not a backend;
/// resolve it with best_available(). Unknown names return nullopt.
std::optional<Backend> parse_backend(std::string_view name);

/// Backends compiled into this binary (always includes kScalar).
std::vector<Backend> compiled_backends();

/// True when the running CPU can execute `backend` (kScalar always can).
bool cpu_supports(Backend backend);

/// Compiled in AND supported by the running CPU.
bool available(Backend backend);

/// The best available backend: avx512 > avx2 > neon > scalar.
Backend best_available();

/// Dispatch table of an explicit backend; throws std::invalid_argument when
/// it is not available on this build/CPU.
const Kernels& get(Backend backend);

/// The process-wide active dispatch table the hdc/ops kernels call through.
/// First use resolves GENERIC_KERNEL_BACKEND ("auto", "scalar", "avx2",
/// "avx512", "neon"; unset == "auto"); an unknown or unavailable value
/// throws so a forced CI leg can never silently run the wrong kernels.
const Kernels& active();

/// Backend of active().
Backend active_backend();

/// Force the active backend; throws std::invalid_argument when unavailable.
/// Safe to call from tests between single-threaded phases; not meant to be
/// raced against in-flight kernel calls.
void set_backend(Backend backend);

/// Set from a CLI/env spelling, accepting "auto". Throws on unknown or
/// unavailable names with a message listing the available backends.
void set_backend_from_string(std::string_view name);

}  // namespace generic::hdc::kernels
