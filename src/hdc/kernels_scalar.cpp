// Scalar reference backend.
//
// This TU is compiled with -fno-tree-vectorize (see src/hdc/CMakeLists.txt):
// with the repo's global -march=native the compiler happily auto-vectorizes
// this loop with the widest popcount the build host has, which would make
// "scalar" silently depend on the build machine and turn every
// scalar-vs-SIMD benchmark into a lie. Disabling vectorization keeps it the
// honest portable baseline: 4-way unrolled hardware popcount, one word at a
// time.
#include <bit>
#include <cstddef>
#include <cstdint>

#include "hdc/kernels_detail.h"

namespace generic::hdc::kernels::detail {

namespace {

std::size_t scalar_xor_popcount(const std::uint64_t* a, const std::uint64_t* b,
                                std::size_t n) {
  // 4-way accumulators break the popcount dependency chain.
  std::size_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    s0 += static_cast<std::size_t>(std::popcount(a[i] ^ b[i]));
    s1 += static_cast<std::size_t>(std::popcount(a[i + 1] ^ b[i + 1]));
    s2 += static_cast<std::size_t>(std::popcount(a[i + 2] ^ b[i + 2]));
    s3 += static_cast<std::size_t>(std::popcount(a[i + 3] ^ b[i + 3]));
  }
  for (; i < n; ++i)
    s0 += static_cast<std::size_t>(std::popcount(a[i] ^ b[i]));
  return s0 + s1 + s2 + s3;
}

void scalar_xor_popcount_many(const std::uint64_t* q,
                              const std::uint64_t* const* refs,
                              std::size_t rows, std::size_t words,
                              std::size_t* out) {
  for (std::size_t r = 0; r < rows; ++r)
    out[r] += scalar_xor_popcount(q, refs[r], words);
}

}  // namespace

const Kernels& scalar_table() {
  static const Kernels k{Backend::kScalar, "scalar", &scalar_xor_popcount,
                         &scalar_xor_popcount_many};
  return k;
}

}  // namespace generic::hdc::kernels::detail
