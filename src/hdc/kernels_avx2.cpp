// AVX2 backend: Muła pshufb nibble-lookup popcount.
//
// Each 256-bit lane of a ^ b is split into nibbles, counted through a
// 16-entry shuffle table, and accumulated in 8-bit lanes. Blocks are capped
// at 28 vectors (28 * 8 = 224 < 255) so the u8 lanes cannot saturate before
// the _mm256_sad_epu8 fold widens them to u64. All sums are exact integers,
// so the result is bit-identical to the scalar reference by construction.
//
// This TU is compiled with -mavx2 (see src/hdc/CMakeLists.txt); dispatch
// guarantees it only runs after __builtin_cpu_supports("avx2") passed.
#include "hdc/kernels_detail.h"

#if defined(GENERIC_KERNELS_HAVE_AVX2)

#include <immintrin.h>

#include <bit>
#include <cstddef>
#include <cstdint>

namespace generic::hdc::kernels::detail {

namespace {

inline __m256i xor256(const std::uint64_t* a, const std::uint64_t* b,
                      std::size_t k) {
  return _mm256_xor_si256(
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + k)),
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + k)));
}

/// Per-byte popcount of v via two 4-bit table lookups.
inline __m256i count_bytes(__m256i v, __m256i lut, __m256i low) {
  const __m256i lo = _mm256_and_si256(v, low);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low);
  return _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                         _mm256_shuffle_epi8(lut, hi));
}

inline __m256i nibble_lut() {
  return _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
                          0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
}

inline std::size_t fold_u64(__m256i total) {
  return static_cast<std::uint64_t>(_mm256_extract_epi64(total, 0)) +
         static_cast<std::uint64_t>(_mm256_extract_epi64(total, 1)) +
         static_cast<std::uint64_t>(_mm256_extract_epi64(total, 2)) +
         static_cast<std::uint64_t>(_mm256_extract_epi64(total, 3));
}

/// u8-lane block cap: 28 vectors * max 8 bits/byte = 224 < 255.
constexpr std::size_t kBlockVectors = 28;

std::size_t avx2_xor_popcount(const std::uint64_t* a, const std::uint64_t* b,
                              std::size_t n) {
  const __m256i lut = nibble_lut();
  const __m256i low = _mm256_set1_epi8(0x0f);
  __m256i total = _mm256_setzero_si256();
  std::size_t i = 0;
  while (i + 4 <= n) {
    std::size_t block = (n - i) / 4;
    if (block > kBlockVectors) block = kBlockVectors;
    __m256i acc = _mm256_setzero_si256();
    std::size_t j = 0;
    for (; j + 4 <= block; j += 4) {
      const __m256i s01 = _mm256_add_epi8(count_bytes(xor256(a, b, i), lut, low),
                                          count_bytes(xor256(a, b, i + 4), lut, low));
      const __m256i s23 =
          _mm256_add_epi8(count_bytes(xor256(a, b, i + 8), lut, low),
                          count_bytes(xor256(a, b, i + 12), lut, low));
      acc = _mm256_add_epi8(acc, _mm256_add_epi8(s01, s23));
      i += 16;
    }
    for (; j < block; ++j) {
      acc = _mm256_add_epi8(acc, count_bytes(xor256(a, b, i), lut, low));
      i += 4;
    }
    total = _mm256_add_epi64(total,
                             _mm256_sad_epu8(acc, _mm256_setzero_si256()));
  }
  std::size_t s = fold_u64(total);
  for (; i < n; ++i)
    s += static_cast<std::size_t>(std::popcount(a[i] ^ b[i]));
  return s;
}

void avx2_xor_popcount_many(const std::uint64_t* q,
                            const std::uint64_t* const* refs, std::size_t rows,
                            std::size_t words, std::size_t* out) {
  const __m256i lut = nibble_lut();
  const __m256i low = _mm256_set1_epi8(0x0f);
  std::size_t r = 0;
  // Two rows share each query load; per-row u8 accumulators obey the same
  // 28-vector block cap as the single-span kernel.
  for (; r + 2 <= rows; r += 2) {
    const std::uint64_t* b0 = refs[r];
    const std::uint64_t* b1 = refs[r + 1];
    __m256i t0 = _mm256_setzero_si256();
    __m256i t1 = _mm256_setzero_si256();
    std::size_t i = 0;
    while (i + 4 <= words) {
      std::size_t block = (words - i) / 4;
      if (block > kBlockVectors) block = kBlockVectors;
      __m256i acc0 = _mm256_setzero_si256();
      __m256i acc1 = _mm256_setzero_si256();
      for (std::size_t j = 0; j < block; ++j) {
        const __m256i vq =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(q + i));
        const __m256i v0 = _mm256_xor_si256(
            vq, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b0 + i)));
        const __m256i v1 = _mm256_xor_si256(
            vq, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b1 + i)));
        acc0 = _mm256_add_epi8(acc0, count_bytes(v0, lut, low));
        acc1 = _mm256_add_epi8(acc1, count_bytes(v1, lut, low));
        i += 4;
      }
      t0 = _mm256_add_epi64(t0,
                            _mm256_sad_epu8(acc0, _mm256_setzero_si256()));
      t1 = _mm256_add_epi64(t1,
                            _mm256_sad_epu8(acc1, _mm256_setzero_si256()));
    }
    std::size_t s0 = fold_u64(t0);
    std::size_t s1 = fold_u64(t1);
    for (; i < words; ++i) {
      s0 += static_cast<std::size_t>(std::popcount(q[i] ^ b0[i]));
      s1 += static_cast<std::size_t>(std::popcount(q[i] ^ b1[i]));
    }
    out[r] += s0;
    out[r + 1] += s1;
  }
  for (; r < rows; ++r) out[r] += avx2_xor_popcount(q, refs[r], words);
}

}  // namespace

const Kernels& avx2_table() {
  static const Kernels k{Backend::kAvx2, "avx2", &avx2_xor_popcount,
                         &avx2_xor_popcount_many};
  return k;
}

}  // namespace generic::hdc::kernels::detail

#endif  // GENERIC_KERNELS_HAVE_AVX2
