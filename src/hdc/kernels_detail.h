// Internal seam between the kernels dispatch TU and the backend TUs.
//
// Each backend lives in its own translation unit so its ISA flags (-mavx2,
// -mavx512vpopcntdq) never leak into code that runs before dispatch has
// checked the CPU. kernels.cpp only links the table accessors that CMake
// compiled in (GENERIC_KERNELS_HAVE_*).
#pragma once

#include "hdc/kernels.h"

namespace generic::hdc::kernels::detail {

const Kernels& scalar_table();

#if defined(GENERIC_KERNELS_HAVE_AVX2)
const Kernels& avx2_table();
#endif

#if defined(GENERIC_KERNELS_HAVE_AVX512)
const Kernels& avx512_table();
#endif

#if defined(GENERIC_KERNELS_HAVE_NEON)
const Kernels& neon_table();
#endif

}  // namespace generic::hdc::kernels::detail
