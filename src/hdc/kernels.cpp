#include "hdc/kernels.h"

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <string>

#include "hdc/kernels_detail.h"

namespace generic::hdc::kernels {

namespace {

std::atomic<const Kernels*> g_active{nullptr};

std::string available_names() {
  std::string names = "auto";
  for (Backend b : compiled_backends()) {
    if (!cpu_supports(b)) continue;
    names += ", ";
    names += to_string(b);
  }
  return names;
}

}  // namespace

std::string_view to_string(Backend backend) {
  switch (backend) {
    case Backend::kScalar: return "scalar";
    case Backend::kAvx2: return "avx2";
    case Backend::kAvx512: return "avx512";
    case Backend::kNeon: return "neon";
  }
  return "unknown";
}

std::optional<Backend> parse_backend(std::string_view name) {
  if (name == "scalar") return Backend::kScalar;
  if (name == "avx2") return Backend::kAvx2;
  if (name == "avx512") return Backend::kAvx512;
  if (name == "neon") return Backend::kNeon;
  return std::nullopt;
}

std::vector<Backend> compiled_backends() {
  std::vector<Backend> out{Backend::kScalar};
#if defined(GENERIC_KERNELS_HAVE_AVX2)
  out.push_back(Backend::kAvx2);
#endif
#if defined(GENERIC_KERNELS_HAVE_AVX512)
  out.push_back(Backend::kAvx512);
#endif
#if defined(GENERIC_KERNELS_HAVE_NEON)
  out.push_back(Backend::kNeon);
#endif
  return out;
}

bool cpu_supports(Backend backend) {
  switch (backend) {
    case Backend::kScalar:
      return true;
    case Backend::kAvx2:
#if defined(__x86_64__) || defined(__i386__)
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
    case Backend::kAvx512:
#if defined(__x86_64__) || defined(__i386__)
      return __builtin_cpu_supports("avx512f") != 0 &&
             __builtin_cpu_supports("avx512vpopcntdq") != 0;
#else
      return false;
#endif
    case Backend::kNeon:
      // NEON is architecturally baseline on aarch64; if the backend was
      // compiled in, the CPU has it.
#if defined(__aarch64__)
      return true;
#else
      return false;
#endif
  }
  return false;
}

bool available(Backend backend) {
  if (!cpu_supports(backend)) return false;
  for (Backend b : compiled_backends())
    if (b == backend) return true;
  return false;
}

Backend best_available() {
  for (Backend b : {Backend::kAvx512, Backend::kAvx2, Backend::kNeon})
    if (available(b)) return b;
  return Backend::kScalar;
}

const Kernels& get(Backend backend) {
  if (!available(backend))
    throw std::invalid_argument(
        "kernel backend '" + std::string(to_string(backend)) +
        "' is not available on this build/CPU (available: " +
        available_names() + ")");
  switch (backend) {
    case Backend::kScalar:
      return detail::scalar_table();
    case Backend::kAvx2:
#if defined(GENERIC_KERNELS_HAVE_AVX2)
      return detail::avx2_table();
#else
      break;
#endif
    case Backend::kAvx512:
#if defined(GENERIC_KERNELS_HAVE_AVX512)
      return detail::avx512_table();
#else
      break;
#endif
    case Backend::kNeon:
#if defined(GENERIC_KERNELS_HAVE_NEON)
      return detail::neon_table();
#else
      break;
#endif
  }
  throw std::invalid_argument("kernel backend not compiled in");
}

const Kernels& active() {
  const Kernels* k = g_active.load(std::memory_order_acquire);
  if (k != nullptr) return *k;
  // First use: resolve GENERIC_KERNEL_BACKEND exactly once. A set_backend()
  // call that raced ahead of us wins the exchange and is kept.
  static const bool initialized = [] {
    const char* env = std::getenv("GENERIC_KERNEL_BACKEND");
    const std::string_view name = (env != nullptr && *env != '\0') ? env
                                                                   : "auto";
    const Kernels* resolved =
        (name == "auto") ? &get(best_available()) : [&] {
          const auto parsed = parse_backend(name);
          if (!parsed)
            throw std::invalid_argument(
                "GENERIC_KERNEL_BACKEND='" + std::string(name) +
                "' is not a known backend (choices: " + available_names() +
                ")");
          return &get(*parsed);
        }();
    const Kernels* expected = nullptr;
    g_active.compare_exchange_strong(expected, resolved,
                                     std::memory_order_acq_rel);
    return true;
  }();
  (void)initialized;
  return *g_active.load(std::memory_order_acquire);
}

Backend active_backend() { return active().backend; }

void set_backend(Backend backend) {
  const Kernels& k = get(backend);  // throws when unavailable
  g_active.store(&k, std::memory_order_release);
}

void set_backend_from_string(std::string_view name) {
  if (name == "auto") {
    set_backend(best_available());
    return;
  }
  const auto parsed = parse_backend(name);
  if (!parsed)
    throw std::invalid_argument("unknown kernel backend '" +
                                std::string(name) +
                                "' (choices: " + available_names() + ")");
  set_backend(*parsed);
}

}  // namespace generic::hdc::kernels
