#include "lifecycle/manager.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <utility>

#include "common/rng.h"
#include "obs/obs.h"
#include "obs/rtrace.h"
#include "resilience/fault_model.h"
#include "serve/policy.h"

namespace generic::lifecycle {

namespace rtrace = obs::rtrace;

namespace {

std::int64_t milli(double v) {
  return static_cast<std::int64_t>(std::llround(v * 1000.0));
}

std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

std::string u64(std::uint64_t v) { return std::to_string(v); }

}  // namespace

std::string_view event_kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::kDriftAlarm: return "drift_alarm";
    case EventKind::kRetrainStart: return "retrain_start";
    case EventKind::kSwap: return "swap";
    case EventKind::kRollback: return "rollback";
  }
  return "unknown";
}

Manager::Manager(std::shared_ptr<const model::HdcClassifier> initial,
                 std::span<const hdc::IntHV> queries,
                 std::span<const int> labels, const LifecycleConfig& cfg,
                 CheckpointStore* store)
    : current_(std::move(initial)),
      queries_(queries),
      labels_(labels),
      cfg_(cfg),
      store_(store),
      pool_(cfg.threads),
      detector_(cfg.drift),
      next_version_(cfg.initial_version + 1) {
  if (!current_) throw std::invalid_argument("Manager: initial model is null");
  if (queries_.size() != labels_.size())
    throw std::invalid_argument("Manager: queries/labels size mismatch");
  if (cfg_.replay_capacity == 0)
    throw std::invalid_argument("Manager: replay_capacity must be >= 1");
  if (cfg_.holdout == 0)
    throw std::invalid_argument("Manager: holdout must be >= 1");
  if (cfg_.min_replay <= cfg_.holdout)
    throw std::invalid_argument(
        "Manager: min_replay must exceed holdout (nothing left to train on)");
  if (cfg_.min_replay > cfg_.replay_capacity)
    throw std::invalid_argument(
        "Manager: min_replay cannot exceed replay_capacity");
  if (cfg_.retrain_epochs == 0)
    throw std::invalid_argument("Manager: retrain_epochs must be >= 1");
  if (cfg_.epsilon < 0.0)
    throw std::invalid_argument("Manager: epsilon must be >= 0");

  VersionRecord rec;
  rec.version = cfg_.initial_version;
  rec.from_retrain = false;
  rec.installed = true;
  rec.vt = 0;
  versions_.push_back(std::move(rec));
}

Manager::~Manager() {
  if (job_ && job_->worker.joinable()) job_->worker.join();
}

void Manager::observe(const serve::ServedObservation& obs) {
  last_vt_ = obs.vt;
  const bool was_alarmed = detector_.alarmed();
  detector_.observe_margin(obs.margin);
  if (obs.canary) {
    detector_.observe_canary(obs.correct);
    bank_canary(obs.query);
    if (was_alarmed) ++fresh_canaries_;
  }
  if (!was_alarmed && detector_.alarmed()) {
    ++alarms_;
    fresh_canaries_ = 0;
    GENERIC_COUNTER_ADD("lifecycle.alarms", 1);
    rtrace::record(rtrace::EventKind::kDriftAlarm, obs.vt, rtrace::kNoRequest,
                   0, 0, milli(detector_.drift_score()));
    events_.push_back(
        LifecycleEvent{obs.vt, EventKind::kDriftAlarm, 0,
                       detector_.drift_score()});
  }
}

void Manager::bank_canary(std::uint64_t query) {
  replay_.push_back(query);
  const auto cls = static_cast<std::size_t>(labels_[query]);
  if (cls >= replay_class_counts_.size())
    replay_class_counts_.resize(cls + 1, 0);
  ++replay_class_counts_[cls];

  auto evict_oldest_of = [&](std::size_t target) {
    for (auto it = replay_.begin(); it != replay_.end(); ++it) {
      if (static_cast<std::size_t>(labels_[*it]) == target) {
        replay_.erase(it);
        --replay_class_counts_[target];
        return;
      }
    }
  };

  // Class quota first: an over-quota class recycles its own oldest canary,
  // so the flood never displaces other classes' replay.
  if (cfg_.replay_class_cap > 0 &&
      replay_class_counts_[cls] > cfg_.replay_class_cap) {
    evict_oldest_of(cls);
  }
  if (replay_.size() > cfg_.replay_capacity) {
    const auto front_cls = static_cast<std::size_t>(labels_[replay_.front()]);
    replay_.pop_front();
    --replay_class_counts_[front_cls];
  }
}

std::optional<serve::ModelUpdate> Manager::poll(std::uint64_t now) {
  if (job_ && now >= job_->ready_vt) {
    job_->worker.join();
    std::unique_ptr<RetrainJob> job = std::move(job_);
    const double score = detector_.drift_score();
    detector_.reset();
    cooldown_until_ = job->ready_vt + cfg_.cooldown_us;

    VersionRecord rec;
    rec.version = job->version;
    rec.from_retrain = true;
    rec.installed = job->passed;
    rec.vt = job->ready_vt;
    rec.updates = job->updates;
    rec.rung_dims = job->rung_dims;
    rec.holdout_accuracy = job->shadow_accuracy;
    rec.baseline_accuracy = job->baseline_accuracy;
    versions_.push_back(std::move(rec));

    serve::ModelUpdate upd;
    upd.version = job->version;
    upd.vt = job->ready_vt;
    if (job->passed) {
      ++swapped_;
      GENERIC_COUNTER_ADD("lifecycle.swaps", 1);
      events_.push_back(
          LifecycleEvent{job->ready_vt, EventKind::kSwap, job->version, score});
      if (store_) {
        store_->save(*job->shadow, job->version, job->ready_vt);
        rtrace::record(rtrace::EventKind::kCheckpointSave, job->ready_vt,
                       rtrace::kNoRequest, job->version);
      }
      current_ = job->shadow;
      upd.model = std::move(job->shadow);
    } else {
      ++rolled_back_;
      GENERIC_COUNTER_ADD("lifecycle.rollbacks", 1);
      events_.push_back(LifecycleEvent{job->ready_vt, EventKind::kRollback,
                                       job->version, score});
      upd.rollback = true;
    }
    return upd;
  }

  if (!job_ && detector_.alarmed() && now >= cooldown_until_ &&
      replay_.size() >= cfg_.min_replay &&
      fresh_canaries_ >= cfg_.min_fresh) {
    start_retrain(now);
  }
  return std::nullopt;
}

void Manager::start_retrain(std::uint64_t now) {
  ++triggered_;
  GENERIC_COUNTER_ADD("lifecycle.retrains", 1);
  if (triggered_ == 1) accuracy_ewma_at_trigger_ = detector_.accuracy_ewma();

  auto job = std::make_unique<RetrainJob>();
  job->trigger_vt = now;
  job->ready_vt = now + cfg_.retrain_cost_us;
  job->version = next_version_++;
  rtrace::record(rtrace::EventKind::kRetrainStart, now, rtrace::kNoRequest,
                 job->version, 0, milli(detector_.drift_score()));
  events_.push_back(LifecycleEvent{now, EventKind::kRetrainStart, job->version,
                                   detector_.drift_score()});

  std::vector<std::uint64_t> snapshot(replay_.begin(), replay_.end());
  RetrainJob* raw = job.get();
  job->worker = std::thread(
      [this, raw, baseline = current_, snap = std::move(snapshot)]() mutable {
        run_retrain(raw, std::move(baseline), std::move(snap));
      });
  job_ = std::move(job);
}

void Manager::run_retrain(RetrainJob* job,
                          std::shared_ptr<const model::HdcClassifier> baseline,
                          std::vector<std::uint64_t> replay_snapshot) {
  GENERIC_SPAN("lifecycle.retrain");
  // Newest `holdout` canaries validate; everything older trains. The split
  // is by recency so validation measures the model on the CURRENT regime.
  const std::size_t holdout_n = cfg_.holdout;
  const std::size_t train_n = replay_snapshot.size() - holdout_n;

  std::vector<hdc::IntHV> train_x;
  std::vector<int> train_y;
  train_x.reserve(train_n);
  train_y.reserve(train_n);
  for (std::size_t i = 0; i < train_n; ++i) {
    const std::uint64_t q = replay_snapshot[i];
    train_x.push_back(queries_[q]);
    train_y.push_back(static_cast<int>(labels_[q]));
  }
  std::vector<hdc::IntHV> hold_x;
  std::vector<int> hold_y;
  hold_x.reserve(holdout_n);
  hold_y.reserve(holdout_n);
  for (std::size_t i = train_n; i < replay_snapshot.size(); ++i) {
    const std::uint64_t q = replay_snapshot[i];
    hold_x.push_back(queries_[q]);
    hold_y.push_back(static_cast<int>(labels_[q]));
  }

  auto shadow = std::make_shared<model::HdcClassifier>(*baseline);
  std::size_t updates = 0;
  for (std::size_t e = 0; e < cfg_.retrain_epochs; ++e) {
    const std::size_t u = shadow->retrain_epoch_parallel(train_x, train_y, pool_);
    updates += u;
    if (u == 0) break;
  }
  job->updates = updates;

  if (cfg_.shadow_fault_rate > 0.0) {
    // Test hook for the validation gate: corrupt the freshly retrained
    // shadow the way voltage over-scaling would, then let validation decide.
    Rng rng(cfg_.seed ^ (0x9E3779B97F4A7C15ULL * job->version));
    resilience::inject(
        *shadow,
        resilience::FaultSpec{resilience::FaultKind::kTransient,
                              cfg_.shadow_fault_rate},
        rng);
  }

  // Validate on the holdout at EVERY serving rung: the shadow must hold up
  // under dimension reduction too, or the SLO ladder would trade accuracy
  // it does not know it lost.
  const std::size_t chunk = baseline->dims() / baseline->num_chunks();
  job->rung_dims = serve::dims_ladder(baseline->dims(), chunk, cfg_.min_dims);
  bool passed = true;
  for (const std::size_t dims : job->rung_dims) {
    const std::vector<int> sp = shadow->predict_reduced_batch(
        hold_x, dims, model::NormMode::kUpdated, pool_);
    const std::vector<int> bp = baseline->predict_reduced_batch(
        hold_x, dims, model::NormMode::kUpdated, pool_);
    std::size_t s_ok = 0, b_ok = 0;
    for (std::size_t i = 0; i < hold_y.size(); ++i) {
      if (sp[i] == hold_y[i]) ++s_ok;
      if (bp[i] == hold_y[i]) ++b_ok;
    }
    const double n = static_cast<double>(hold_y.size());
    const double s_acc = static_cast<double>(s_ok) / n;
    const double b_acc = static_cast<double>(b_ok) / n;
    job->shadow_accuracy.push_back(s_acc);
    job->baseline_accuracy.push_back(b_acc);
    if (s_acc + cfg_.epsilon < b_acc) passed = false;
  }
  job->passed = passed;
  job->shadow = std::move(shadow);
}

LifecycleReport Manager::report() const {
  LifecycleReport r;
  r.config = cfg_;
  r.observations = detector_.observations();
  r.canaries = detector_.canaries();
  r.replay_size = replay_.size();
  r.margin_ewma = detector_.margin_ewma();
  r.accuracy_ewma = detector_.accuracy_ewma();
  r.peak_accuracy = detector_.peak_accuracy();
  r.drift_score = detector_.drift_score();
  r.alarms = alarms_;
  r.triggered = triggered_;
  r.swapped = swapped_;
  r.rolled_back = rolled_back_;
  r.accuracy_ewma_at_trigger = accuracy_ewma_at_trigger_;
  r.final_accuracy_ewma = detector_.accuracy_ewma();
  r.events = events_;
  r.versions = versions_;
  if (store_) {
    r.checkpoints_saved = store_->saved();
    r.checkpoints_pruned = store_->pruned();
    r.checkpoints_quarantined = store_->quarantined();
  }
  return r;
}

std::string lifecycle_report_to_json(const LifecycleReport& report) {
  // Field order is part of the schema: equal reports render to equal bytes.
  // cfg.threads is deliberately NOT echoed — the report must be
  // byte-identical across --threads.
  const LifecycleConfig& c = report.config;
  std::string out = "{\n";
  out += "  \"schema\": \"generic.lifecycle.v1\",\n";
  out += "  \"config\": {\n";
  out += "    \"drift\": {\"margin_alpha\": " + fmt(c.drift.margin_alpha) +
         ", \"accuracy_alpha\": " + fmt(c.drift.accuracy_alpha) +
         ", \"warmup\": " + u64(c.drift.warmup) +
         ", \"canary_warmup\": " + u64(c.drift.canary_warmup) +
         ", \"ph_delta\": " + fmt(c.drift.ph_delta) +
         ", \"ph_lambda\": " + fmt(c.drift.ph_lambda) +
         ", \"accuracy_drop\": " + fmt(c.drift.accuracy_drop) + "},\n";
  out += "    \"replay_capacity\": " + u64(c.replay_capacity) +
         ",\n    \"replay_class_cap\": " + u64(c.replay_class_cap) +
         ",\n    \"holdout\": " + u64(c.holdout) +
         ",\n    \"min_replay\": " + u64(c.min_replay) +
         ",\n    \"min_fresh\": " + u64(c.min_fresh) +
         ",\n    \"retrain_epochs\": " + u64(c.retrain_epochs) +
         ",\n    \"retrain_cost_us\": " + u64(c.retrain_cost_us) +
         ",\n    \"cooldown_us\": " + u64(c.cooldown_us) +
         ",\n    \"epsilon\": " + fmt(c.epsilon) +
         ",\n    \"min_dims\": " + u64(c.min_dims) +
         ",\n    \"initial_version\": " + u64(c.initial_version) +
         ",\n    \"seed\": " + u64(c.seed) +
         ",\n    \"shadow_fault_rate\": " + fmt(c.shadow_fault_rate) + "\n";
  out += "  },\n";
  out += "  \"drift\": {\n";
  out += "    \"observations\": " + u64(report.observations) +
         ",\n    \"canaries\": " + u64(report.canaries) +
         ",\n    \"replay_size\": " + u64(report.replay_size) +
         ",\n    \"margin_ewma\": " + fmt(report.margin_ewma) +
         ",\n    \"accuracy_ewma\": " + fmt(report.accuracy_ewma) +
         ",\n    \"peak_accuracy\": " + fmt(report.peak_accuracy) +
         ",\n    \"drift_score\": " + fmt(report.drift_score) +
         ",\n    \"alarms\": " + u64(report.alarms) +
         ",\n    \"accuracy_ewma_at_trigger\": " +
         fmt(report.accuracy_ewma_at_trigger) +
         ",\n    \"final_accuracy_ewma\": " + fmt(report.final_accuracy_ewma) +
         "\n  },\n";
  out += "  \"retrains\": {\"triggered\": " + u64(report.triggered) +
         ", \"swapped\": " + u64(report.swapped) +
         ", \"rolled_back\": " + u64(report.rolled_back) + "},\n";
  out += "  \"events\": [";
  for (std::size_t i = 0; i < report.events.size(); ++i) {
    const LifecycleEvent& e = report.events[i];
    out += (i == 0 ? "\n" : ",\n");
    out += "    {\"vt_us\": " + u64(e.vt) + ", \"kind\": \"" +
           std::string(event_kind_name(e.kind)) +
           "\", \"version\": " + u64(e.version) +
           ", \"drift_score\": " + fmt(e.drift_score) + "}";
  }
  out += report.events.empty() ? "],\n" : "\n  ],\n";
  out += "  \"versions\": [";
  for (std::size_t i = 0; i < report.versions.size(); ++i) {
    const VersionRecord& v = report.versions[i];
    out += (i == 0 ? "\n" : ",\n");
    out += "    {\"version\": " + u64(v.version) + ", \"source\": \"" +
           (v.from_retrain ? "retrain" : "initial") +
           "\", \"installed\": " + (v.installed ? "true" : "false") +
           ", \"vt_us\": " + u64(v.vt) + ", \"updates\": " + u64(v.updates) +
           ", \"rungs\": [";
    for (std::size_t r = 0; r < v.rung_dims.size(); ++r) {
      if (r != 0) out += ", ";
      out += "{\"dims\": " + u64(v.rung_dims[r]) +
             ", \"holdout_accuracy\": " + fmt(v.holdout_accuracy[r]) +
             ", \"baseline_accuracy\": " + fmt(v.baseline_accuracy[r]) + "}";
    }
    out += "]}";
  }
  out += report.versions.empty() ? "],\n" : "\n  ],\n";
  out += "  \"checkpoints\": {\"saved\": " + u64(report.checkpoints_saved) +
         ", \"pruned\": " + u64(report.checkpoints_pruned) +
         ", \"quarantined\": " + u64(report.checkpoints_quarantined) + "}\n";
  out += "}\n";
  return out;
}

void write_lifecycle_json(const std::string& path,
                          const LifecycleReport& report) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw std::runtime_error("cannot write " + path);
  out << lifecycle_report_to_json(report);
}

}  // namespace generic::lifecycle
