// Concept-drift detection over the serving engine's observation stream
// (docs/lifecycle.md).
//
// Two complementary signals, both in the engine's VIRTUAL time:
//
//  * Prediction margins (the normalized top1-vs-top2 score gap of every
//    served request, model::Prediction::margin in [0, 1]) through a
//    Page–Hinkley test for a downward mean shift: with running
//    mean m_t of the margins x_1..x_t, the statistic
//        c_t = sum_{i<=t} (m_i - x_i - delta),  PH_t = c_t - min_i c_i
//    alarms when PH_t > lambda. Margins need no labels, so this watches
//    every request, and it reacts to "the model is less sure" well before
//    accuracy itself is measurable.
//  * Canary accuracy: an EWMA over the labeled canary subset, compared
//    against the best EWMA seen since (re)arming. A drop of more than
//    `accuracy_drop` is the direct, slower signal.
//
// Either signal raises the alarm. Every update is a fixed sequence of
// double operations on a deterministic observation stream, so alarm
// positions are byte-stable across --threads (the determinism contract the
// lifecycle report relies on).
#pragma once

#include <cstddef>
#include <cstdint>

namespace generic::lifecycle {

struct DriftConfig {
  double margin_alpha = 0.05;   ///< margin EWMA weight (report signal)
  double accuracy_alpha = 0.1;  ///< canary-accuracy EWMA weight
  std::size_t warmup = 64;      ///< margin observations before PH arms
  std::size_t canary_warmup = 16;  ///< canaries before the accuracy test arms
  double ph_delta = 0.01;       ///< PH allowance: drift smaller than this is noise
  double ph_lambda = 2.5;       ///< PH alarm threshold
  double accuracy_drop = 0.15;  ///< alarm when EWMA falls this far below peak
};

class DriftDetector {
 public:
  explicit DriftDetector(const DriftConfig& cfg);

  /// Feed the margin of one served request (any request, labeled or not).
  void observe_margin(double margin);

  /// Feed one labeled canary outcome.
  void observe_canary(bool correct);

  /// True once either signal has crossed its threshold; sticky until reset().
  bool alarmed() const { return alarmed_; }

  /// Page–Hinkley statistic normalized by lambda (>= 1 means alarming) —
  /// the "drift score" of generic.lifecycle.v1.
  double drift_score() const;

  /// Re-arm after a swap or rollback: the model changed, so margin and
  /// accuracy baselines start over (full warmup again).
  void reset();

  double margin_ewma() const { return margin_ewma_; }
  double accuracy_ewma() const { return accuracy_ewma_; }
  double peak_accuracy() const { return peak_accuracy_; }
  std::uint64_t observations() const { return n_; }
  std::uint64_t canaries() const { return canaries_; }

 private:
  DriftConfig cfg_;

  // Margin / Page–Hinkley state.
  std::uint64_t n_ = 0;
  double mean_ = 0.0;      ///< running mean of margins
  double cum_ = 0.0;       ///< PH cumulative downward deviation
  double min_cum_ = 0.0;   ///< min_i cum_i (statistic is cum_ - min_cum_)
  double margin_ewma_ = 0.0;
  bool margin_seeded_ = false;

  // Canary accuracy state.
  std::uint64_t canaries_ = 0;
  double accuracy_ewma_ = 0.0;
  double peak_accuracy_ = 0.0;

  bool alarmed_ = false;
};

}  // namespace generic::lifecycle
