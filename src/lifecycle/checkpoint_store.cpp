#include "lifecycle/checkpoint_store.h"

#include <algorithm>
#include <array>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <stdexcept>
#include <utility>

#include "model/model_io.h"
#include "resilience/block_guard.h"

namespace generic::lifecycle {
namespace {

namespace fs = std::filesystem;

constexpr std::array<char, 4> kMagic = {'G', 'C', 'K', 'P'};
constexpr std::uint32_t kStoreVersion = 1;

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

class Reader {
 public:
  explicit Reader(const std::vector<std::uint8_t>& buf) : buf_(buf) {}

  std::uint32_t get_u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
      v |= static_cast<std::uint32_t>(buf_[pos_ + i]) << (8 * i);
    pos_ += 4;
    return v;
  }

  std::uint64_t get_u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(buf_[pos_ + i]) << (8 * i);
    pos_ += 8;
    return v;
  }

  std::vector<std::uint8_t> get_bytes(std::size_t n) {
    need(n);
    std::vector<std::uint8_t> out(buf_.begin() + static_cast<long>(pos_),
                                  buf_.begin() + static_cast<long>(pos_ + n));
    pos_ += n;
    return out;
  }

  std::size_t pos() const { return pos_; }
  std::size_t remaining() const { return buf_.size() - pos_; }

 private:
  void need(std::size_t n) const {
    if (buf_.size() - pos_ < n)
      throw std::invalid_argument("checkpoint truncated");
  }
  const std::vector<std::uint8_t>& buf_;
  std::size_t pos_ = 0;
};

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::invalid_argument("cannot open checkpoint: " + path);
  std::vector<std::uint8_t> buf((std::istreambuf_iterator<char>(in)),
                                std::istreambuf_iterator<char>());
  return buf;
}

/// Parse one checkpoint file. Error contract mirrors model_io: any
/// corruption is std::invalid_argument; an intact file from a newer writer
/// (outer header or inner classifier blob) is UnsupportedVersionError.
LoadedCheckpoint parse_checkpoint(const std::string& path) {
  const std::vector<std::uint8_t> buf = read_file(path);
  if (buf.size() < kMagic.size() + 4 + 8 + 8 + 8 + 4)
    throw std::invalid_argument("checkpoint truncated");
  // Outer CRC first: distinguishes corruption from every other complaint.
  const std::size_t body = buf.size() - 4;
  std::uint32_t stored = 0;
  for (int i = 0; i < 4; ++i)
    stored |= static_cast<std::uint32_t>(buf[body + i]) << (8 * i);
  if (model::crc32(buf.data(), body) != stored)
    throw std::invalid_argument("checkpoint CRC mismatch");

  Reader r(buf);
  const std::vector<std::uint8_t> magic = r.get_bytes(kMagic.size());
  if (!std::equal(magic.begin(), magic.end(), kMagic.begin()))
    throw std::invalid_argument("checkpoint bad magic");
  const std::uint32_t version = r.get_u32();
  if (version > kStoreVersion)
    throw model::UnsupportedVersionError(version, kStoreVersion);
  if (version != kStoreVersion)
    throw std::invalid_argument("checkpoint unsupported format version");

  LoadedCheckpoint out;
  out.version = r.get_u64();
  out.vt = r.get_u64();
  const std::uint64_t payload_size = r.get_u64();
  if (payload_size != r.remaining() - 4)
    throw std::invalid_argument("checkpoint payload size mismatch");
  const std::vector<std::uint8_t> payload =
      r.get_bytes(static_cast<std::size_t>(payload_size));
  out.model = model::deserialize_classifier(payload);
  return out;
}

std::optional<std::uint64_t> version_from_suffixed(const std::string& name,
                                                   const std::string& suffix) {
  // ckpt-%08llu<suffix> — tolerate more digits than 8.
  const std::string prefix = "ckpt-";
  if (name.size() <= prefix.size() + suffix.size()) return std::nullopt;
  if (name.compare(0, prefix.size(), prefix) != 0) return std::nullopt;
  if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0)
    return std::nullopt;
  std::uint64_t v = 0;
  for (std::size_t i = prefix.size(); i < name.size() - suffix.size(); ++i) {
    if (name[i] < '0' || name[i] > '9') return std::nullopt;
    v = v * 10 + static_cast<std::uint64_t>(name[i] - '0');
  }
  return v;
}

std::optional<std::uint64_t> version_from_name(const std::string& name) {
  return version_from_suffixed(name, ".gckp");
}

std::optional<std::uint64_t> version_from_quarantined(const std::string& name) {
  return version_from_suffixed(name, ".gckp.quarantined");
}

}  // namespace

CheckpointStore::CheckpointStore(std::string dir, std::size_t keep_last)
    : dir_(std::move(dir)), keep_last_(keep_last) {
  if (dir_.empty())
    throw std::invalid_argument("CheckpointStore: dir must not be empty");
  if (keep_last_ == 0)
    throw std::invalid_argument("CheckpointStore: keep_last must be >= 1");
  fs::create_directories(dir_);
}

std::string CheckpointStore::path_for(std::uint64_t version) const {
  char name[32];
  std::snprintf(name, sizeof(name), "ckpt-%08llu.gckp",
                static_cast<unsigned long long>(version));
  return (fs::path(dir_) / name).string();
}

std::string CheckpointStore::save(const model::HdcClassifier& model,
                                  std::uint64_t version, std::uint64_t vt) {
  const std::string path = path_for(version);
  if (fs::exists(path))
    throw std::invalid_argument("CheckpointStore: version already saved: " +
                                std::to_string(version));

  const std::vector<std::uint8_t> payload = model::serialize_classifier(model);
  std::vector<std::uint8_t> buf;
  buf.reserve(payload.size() + 40);
  buf.insert(buf.end(), kMagic.begin(), kMagic.end());
  put_u32(buf, kStoreVersion);
  put_u64(buf, version);
  put_u64(buf, vt);
  put_u64(buf, payload.size());
  buf.insert(buf.end(), payload.begin(), payload.end());
  put_u32(buf, model::crc32(buf.data(), buf.size()));

  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out)
      throw std::runtime_error("CheckpointStore: cannot write " + tmp);
    out.write(reinterpret_cast<const char*>(buf.data()),
              static_cast<std::streamsize>(buf.size()));
    if (!out) throw std::runtime_error("CheckpointStore: write failed: " + tmp);
  }

  // Read-back verification before the rename publishes the file: the blob
  // must decode, and the decoded weights must match the live model block for
  // block (BlockGuard per-chunk CRC + sub-norm cross-check).
  const LoadedCheckpoint check = parse_checkpoint(tmp);
  const auto guard = resilience::BlockGuard::commission(model);
  if (guard.count_faulty(check.model) != 0) {
    fs::remove(tmp);
    throw std::runtime_error(
        "CheckpointStore: round-trip verification failed for version " +
        std::to_string(version));
  }
  fs::rename(tmp, path);
  ++saved_;
  prune();
  return path;
}

void CheckpointStore::prune() {
  std::vector<CheckpointInfo> all = list();
  for (std::size_t i = 0; i + keep_last_ < all.size(); ++i) {
    fs::remove(all[i].path);
    ++pruned_;
  }
  prune_quarantined();
}

void CheckpointStore::prune_quarantined() {
  std::vector<CheckpointInfo> all = list_quarantined();
  for (std::size_t i = 0; i + keep_last_ < all.size(); ++i) {
    fs::remove(all[i].path);
    ++pruned_quarantined_;
  }
}

std::vector<CheckpointInfo> CheckpointStore::list() const {
  std::vector<CheckpointInfo> out;
  for (const auto& entry : fs::directory_iterator(dir_)) {
    if (!entry.is_regular_file()) continue;
    const auto version = version_from_name(entry.path().filename().string());
    if (!version) continue;
    out.push_back(CheckpointInfo{*version, entry.path().string()});
  }
  std::sort(out.begin(), out.end(),
            [](const CheckpointInfo& a, const CheckpointInfo& b) {
              return a.version < b.version;
            });
  return out;
}

std::vector<CheckpointInfo> CheckpointStore::list_quarantined() const {
  std::vector<CheckpointInfo> out;
  for (const auto& entry : fs::directory_iterator(dir_)) {
    if (!entry.is_regular_file()) continue;
    const auto version =
        version_from_quarantined(entry.path().filename().string());
    if (!version) continue;
    out.push_back(CheckpointInfo{*version, entry.path().string()});
  }
  std::sort(out.begin(), out.end(),
            [](const CheckpointInfo& a, const CheckpointInfo& b) {
              return a.version < b.version;
            });
  return out;
}

std::optional<LoadedCheckpoint> CheckpointStore::load_latest() {
  std::vector<CheckpointInfo> all = list();
  std::optional<LoadedCheckpoint> loaded;
  bool quarantined_any = false;
  for (auto it = all.rbegin(); it != all.rend() && !loaded; ++it) {
    try {
      loaded = parse_checkpoint(it->path);
    } catch (const model::UnsupportedVersionError&) {
      // Intact bytes from a newer writer: not our file to read, but not
      // damage either — leave it alone for the newer reader.
      ++skipped_newer_;
    } catch (const std::invalid_argument&) {
      fs::rename(it->path, it->path + ".quarantined");
      ++quarantined_;
      quarantined_any = true;
    }
  }
  // Cap the evidence pile: repeated corrupt boots must not accumulate
  // .quarantined files without bound.
  if (quarantined_any) prune_quarantined();
  return loaded;
}

}  // namespace generic::lifecycle
