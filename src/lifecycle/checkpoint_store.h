// Versioned on-disk classifier checkpoints (docs/lifecycle.md).
//
// Every validated model the lifecycle installs is snapshotted so a node can
// restart — or roll back — from the last known-good weights. One file per
// version under a store directory:
//
//   ckpt-00000001.gckp
//     magic "GCKP", u32 store format version,
//     u64 model_version, u64 virtual install time,
//     u64 payload size, payload = model_io classifier blob ("GCLS", its own
//     CRC footer), u32 crc32 over everything before it.
//
// Durability and hygiene rules:
//  * save() writes to a ".tmp" sibling, decodes it back and cross-checks the
//    round-trip against a resilience::BlockGuard commissioned on the live
//    model (per-block CRC + sub-norm), and only then renames into place —
//    a crash mid-write can never leave a half-checkpoint under a live name.
//  * Only the newest keep_last checkpoints survive a save(); older ones are
//    pruned.
//  * load_latest() walks versions newest-first. A corrupt file (bad magic,
//    truncation, CRC mismatch — anything std::invalid_argument) is
//    QUARANTINED by renaming to ".quarantined" and the walk continues with
//    the next-older version. A file that is intact but written by a NEWER
//    schema (model::UnsupportedVersionError) is skipped WITHOUT quarantine:
//    the bytes are fine, this reader is just too old for them.
//  * Quarantined files are kept for post-mortem inspection but capped under
//    the same keep_last policy as live checkpoints: whenever pruning runs
//    (after save() and after a load_latest() that quarantined anything),
//    only the newest keep_last ".gckp.quarantined" files survive — a node
//    that keeps tripping over corruption must not fill its flash with the
//    evidence.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "model/hdc_classifier.h"

namespace generic::lifecycle {

struct CheckpointInfo {
  std::uint64_t version = 0;
  std::string path;
};

struct LoadedCheckpoint {
  model::HdcClassifier model{128, 1, 128};
  std::uint64_t version = 0;
  std::uint64_t vt = 0;
};

class CheckpointStore {
 public:
  /// Creates `dir` if missing. keep_last must be >= 1.
  explicit CheckpointStore(std::string dir, std::size_t keep_last = 4);

  /// Snapshot `model` as `version` (monotonically increasing by contract;
  /// re-saving an existing version throws). Returns the final path.
  std::string save(const model::HdcClassifier& model, std::uint64_t version,
                   std::uint64_t vt);

  /// Newest checkpoint that verifies, or nullopt when none does.
  std::optional<LoadedCheckpoint> load_latest();

  /// Checkpoints currently on disk (quarantined files excluded), sorted by
  /// ascending version.
  std::vector<CheckpointInfo> list() const;

  /// Quarantined files currently on disk, sorted by ascending version.
  std::vector<CheckpointInfo> list_quarantined() const;

  const std::string& dir() const { return dir_; }
  std::uint64_t saved() const { return saved_; }
  std::uint64_t pruned() const { return pruned_; }
  std::uint64_t quarantined() const { return quarantined_; }
  std::uint64_t pruned_quarantined() const { return pruned_quarantined_; }
  std::uint64_t skipped_newer() const { return skipped_newer_; }

 private:
  std::string path_for(std::uint64_t version) const;
  void prune();
  void prune_quarantined();

  std::string dir_;
  std::size_t keep_last_;
  std::uint64_t saved_ = 0;
  std::uint64_t pruned_ = 0;
  std::uint64_t quarantined_ = 0;
  std::uint64_t pruned_quarantined_ = 0;
  std::uint64_t skipped_newer_ = 0;
};

}  // namespace generic::lifecycle
