#include "lifecycle/drift_detector.h"

#include <algorithm>
#include <stdexcept>

namespace generic::lifecycle {

DriftDetector::DriftDetector(const DriftConfig& cfg) : cfg_(cfg) {
  if (cfg.margin_alpha <= 0.0 || cfg.margin_alpha > 1.0)
    throw std::invalid_argument("DriftDetector: margin_alpha must be in (0, 1]");
  if (cfg.accuracy_alpha <= 0.0 || cfg.accuracy_alpha > 1.0)
    throw std::invalid_argument(
        "DriftDetector: accuracy_alpha must be in (0, 1]");
  if (cfg.ph_lambda <= 0.0)
    throw std::invalid_argument("DriftDetector: ph_lambda must be positive");
  if (cfg.ph_delta < 0.0)
    throw std::invalid_argument("DriftDetector: ph_delta must be >= 0");
  if (cfg.accuracy_drop <= 0.0 || cfg.accuracy_drop >= 1.0)
    throw std::invalid_argument(
        "DriftDetector: accuracy_drop must be in (0, 1)");
}

void DriftDetector::observe_margin(double margin) {
  ++n_;
  mean_ += (margin - mean_) / static_cast<double>(n_);
  // Page–Hinkley, downward-shift form: cum_ accumulates how far margins sit
  // BELOW the running mean (minus the delta allowance); the test statistic
  // is cum_ - min cum_, which stays near zero in-regime and climbs once the
  // margin distribution shifts down.
  cum_ += mean_ - margin - cfg_.ph_delta;
  min_cum_ = std::min(min_cum_, cum_);
  if (!margin_seeded_) {
    margin_ewma_ = margin;
    margin_seeded_ = true;
  } else {
    margin_ewma_ += cfg_.margin_alpha * (margin - margin_ewma_);
  }
  if (n_ > cfg_.warmup && cum_ - min_cum_ > cfg_.ph_lambda) alarmed_ = true;
}

void DriftDetector::observe_canary(bool correct) {
  ++canaries_;
  const double x = correct ? 1.0 : 0.0;
  if (canaries_ == 1) {
    accuracy_ewma_ = x;
  } else {
    accuracy_ewma_ += cfg_.accuracy_alpha * (x - accuracy_ewma_);
  }
  if (canaries_ >= cfg_.canary_warmup) {
    peak_accuracy_ = std::max(peak_accuracy_, accuracy_ewma_);
    if (peak_accuracy_ - accuracy_ewma_ > cfg_.accuracy_drop) alarmed_ = true;
  }
}

double DriftDetector::drift_score() const {
  return (cum_ - min_cum_) / cfg_.ph_lambda;
}

void DriftDetector::reset() {
  n_ = 0;
  mean_ = 0.0;
  cum_ = 0.0;
  min_cum_ = 0.0;
  margin_ewma_ = 0.0;
  margin_seeded_ = false;
  canaries_ = 0;
  accuracy_ewma_ = 0.0;
  peak_accuracy_ = 0.0;
  alarmed_ = false;
}

}  // namespace generic::lifecycle
