// Online model lifecycle manager (docs/lifecycle.md): the concrete
// serve::ModelLifecycle that closes the loop
//
//   Serving -> DriftSuspected -> Retraining -> Validating
//           -> Swapped / RolledBack -> Serving
//
// * observe() feeds every served request's margin into the DriftDetector
//   and banks labeled canaries into a bounded replay buffer.
// * When the detector alarms (and the cooldown allows and enough replay has
//   accumulated), poll() triggers a background retrain: a shadow copy of
//   the current model runs retrain_epoch_parallel over the replay buffer
//   minus its newest `holdout` entries, on the manager's OWN ThreadPool —
//   the serving control thread never blocks on training compute.
// * The shadow is then validated on the held-out slice at EVERY rung of the
//   serving dimension ladder: it must not regress accuracy by more than
//   epsilon at any rung (a model that only wins at full dimensions but
//   collapses when degraded would sabotage the SLO ladder).
// * Virtual-time contract: a retrain triggered at virtual time T has a
//   modeled cost of retrain_cost_us, so poll(now) publishes the verdict
//   only once now >= T + retrain_cost_us — at which point it joins the
//   worker (the join may block on the wall clock; the OUTCOME is already a
//   pure function of (model, replay, config), so the report stays
//   byte-identical across --threads).
// * A validated shadow is checkpointed (CheckpointStore, when configured)
//   and returned for hot-swap; a failed one is discarded and reported as a
//   rollback. Either way the detector re-arms from scratch.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "hdc/hypervector.h"
#include "lifecycle/checkpoint_store.h"
#include "lifecycle/drift_detector.h"
#include "model/hdc_classifier.h"
#include "serve/lifecycle_hook.h"

namespace generic::lifecycle {

struct LifecycleConfig {
  DriftConfig drift;
  std::size_t replay_capacity = 512;  ///< bounded canary replay buffer
  /// Per-class replay quota (0 = unbounded). With a cap, banking a canary
  /// whose class already holds `replay_class_cap` entries evicts the OLDEST
  /// canary of that same class instead of growing the class further — so a
  /// single-class flash crowd cannot flood the buffer and starve retrain
  /// validation of every other class.
  std::size_t replay_class_cap = 0;
  std::size_t holdout = 96;    ///< newest replay entries reserved for validation
  std::size_t min_replay = 192;       ///< no retrain below this many canaries
  /// Canaries that must arrive AFTER the alarm edge before a retrain
  /// triggers: lets the replay buffer fill with post-drift samples so the
  /// shadow trains on the new regime, not on memories of the old one.
  std::size_t min_fresh = 0;
  std::size_t retrain_epochs = 3;
  std::uint64_t retrain_cost_us = 30000;  ///< modeled virtual retrain latency
  std::uint64_t cooldown_us = 50000;  ///< min virtual gap between triggers
  double epsilon = 0.02;       ///< allowed holdout accuracy drop, per rung
  std::size_t min_dims = 512;  ///< validation ladder floor (match serving cfg)
  std::size_t threads = 1;     ///< lanes of the manager's own pool (0 = hw)
  /// Version of the model the manager starts from: 0 for a fresh boot, or
  /// the checkpoint's version when restarting from CheckpointStore — the
  /// first retrain then becomes initial_version + 1, so version numbering
  /// stays monotone across restarts.
  std::uint64_t initial_version = 0;
  std::uint64_t seed = 0xC1F3; ///< shadow-corruption rng root (test hook)
  double shadow_fault_rate = 0.0;  ///< corrupt the shadow before validation
                                   ///< (tests the rejection gate; keep 0 in
                                   ///< production)
};

/// Timeline entry kinds of generic.lifecycle.v1.
enum class EventKind { kDriftAlarm, kRetrainStart, kSwap, kRollback };
std::string_view event_kind_name(EventKind kind);

struct LifecycleEvent {
  std::uint64_t vt = 0;
  EventKind kind = EventKind::kDriftAlarm;
  std::uint64_t version = 0;   ///< candidate/installed version (0: drift alarm)
  double drift_score = 0.0;    ///< detector score at the event
};

/// One model version the lifecycle produced (or started from).
struct VersionRecord {
  std::uint64_t version = 0;
  bool from_retrain = false;   ///< false: the initial model
  bool installed = false;      ///< false: candidate failed validation
  std::uint64_t vt = 0;        ///< virtual install / rejection time
  std::size_t updates = 0;     ///< perceptron updates across retrain epochs
  std::vector<std::size_t> rung_dims;      ///< validation ladder
  std::vector<double> holdout_accuracy;    ///< shadow accuracy per rung
  std::vector<double> baseline_accuracy;   ///< outgoing model, same holdout
};

/// Everything generic.lifecycle.v1 reports.
struct LifecycleReport {
  LifecycleConfig config;
  std::uint64_t observations = 0;
  std::uint64_t canaries = 0;
  std::uint64_t replay_size = 0;
  double margin_ewma = 0.0;
  double accuracy_ewma = 0.0;
  double peak_accuracy = 0.0;
  double drift_score = 0.0;
  std::uint64_t alarms = 0;     ///< detector alarm edges observed
  std::uint64_t triggered = 0;  ///< retrains started
  std::uint64_t swapped = 0;
  std::uint64_t rolled_back = 0;
  double accuracy_ewma_at_trigger = 0.0;  ///< at the FIRST retrain trigger
  double final_accuracy_ewma = 0.0;       ///< at report time
  std::vector<LifecycleEvent> events;
  std::vector<VersionRecord> versions;
  std::uint64_t checkpoints_saved = 0;
  std::uint64_t checkpoints_pruned = 0;
  std::uint64_t checkpoints_quarantined = 0;
};

/// Render as schema `generic.lifecycle.v1`: fixed field order, "%.9g"
/// doubles, no wall-clock or thread-count fields — byte-identical across
/// --threads for a fixed (trace, config, seed).
std::string lifecycle_report_to_json(const LifecycleReport& report);
void write_lifecycle_json(const std::string& path,
                          const LifecycleReport& report);

class Manager : public serve::ModelLifecycle {
 public:
  /// `initial` is the model the engine starts serving (shared so manager
  /// and engine agree on the object). `queries`/`labels` is the SAME query
  /// set (and ground truth) the engine was constructed over — observations
  /// reference queries by index. `store` (optional, not owned) receives a
  /// checkpoint per validated version.
  Manager(std::shared_ptr<const model::HdcClassifier> initial,
          std::span<const hdc::IntHV> queries, std::span<const int> labels,
          const LifecycleConfig& cfg, CheckpointStore* store = nullptr);
  ~Manager() override;

  Manager(const Manager&) = delete;
  Manager& operator=(const Manager&) = delete;

  void observe(const serve::ServedObservation& obs) override;
  std::optional<serve::ModelUpdate> poll(std::uint64_t now) override;

  /// Snapshot of the lifecycle state for reporting. Call after the engine
  /// finished (no concurrent observe/poll).
  LifecycleReport report() const;

  const DriftDetector& detector() const { return detector_; }
  std::size_t replay_size() const { return replay_.size(); }
  /// Canaries currently banked per class label (index == label). Exposed
  /// for the class-balancing tests and chaos invariant checks.
  const std::vector<std::size_t>& replay_class_histogram() const {
    return replay_class_counts_;
  }
  bool retrain_in_flight() const { return job_ != nullptr; }

 private:
  struct RetrainJob {
    std::uint64_t trigger_vt = 0;
    std::uint64_t ready_vt = 0;
    std::uint64_t version = 0;
    std::thread worker;
    // Written by the worker, read after join:
    std::shared_ptr<model::HdcClassifier> shadow;
    bool passed = false;
    std::size_t updates = 0;
    std::vector<std::size_t> rung_dims;
    std::vector<double> shadow_accuracy;
    std::vector<double> baseline_accuracy;
  };

  void start_retrain(std::uint64_t now);
  void run_retrain(RetrainJob* job,
                   std::shared_ptr<const model::HdcClassifier> baseline,
                   std::vector<std::uint64_t> replay_snapshot);

  std::shared_ptr<const model::HdcClassifier> current_;
  std::span<const hdc::IntHV> queries_;
  std::span<const int> labels_;
  LifecycleConfig cfg_;
  CheckpointStore* store_ = nullptr;
  ThreadPool pool_;  ///< the manager's own lanes; never the engine's pool

  void bank_canary(std::uint64_t query);

  DriftDetector detector_;
  std::deque<std::uint64_t> replay_;  ///< canary query indices, oldest first
  std::vector<std::size_t> replay_class_counts_;  ///< per-class replay tally
  std::unique_ptr<RetrainJob> job_;
  std::uint64_t next_version_;  ///< first retrain: initial_version + 1
  std::uint64_t cooldown_until_ = 0;
  std::uint64_t fresh_canaries_ = 0;  ///< canaries since the alarm edge
  std::uint64_t last_vt_ = 0;

  // Report accumulation.
  std::uint64_t alarms_ = 0;
  std::uint64_t triggered_ = 0;
  std::uint64_t swapped_ = 0;
  std::uint64_t rolled_back_ = 0;
  double accuracy_ewma_at_trigger_ = 0.0;
  std::vector<LifecycleEvent> events_;
  std::vector<VersionRecord> versions_;
};

}  // namespace generic::lifecycle
