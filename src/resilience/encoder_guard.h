// Self-healing encoder memory: CRC guard + seed-rematerialization scrub.
//
// BlockGuard (block_guard.h) protects the class memory; this is the same
// idea applied to the OTHER large SRAM of the datapath — the encoder's
// level rows and rotating id seed. The encoder memories have a property
// class memory lacks: every row is a pure function of (seed, dims, key)
// (item_memory.h, PR 7 rematerialization), so a corrupted row is not just
// detectable but perfectly repairable — rematerialize it from the seed and
// it comes back bit-identical, no golden blob required.
//
// An EncoderGuard snapshots one CRC32 per stored level row plus one for
// the id seed row at commission time. A scan flags rows whose CRC changed;
// the caller then picks a repair policy:
//
//   kDetect — count + report, keep serving through the damage (the
//             baseline every campaign measures against);
//   kMask   — GenericEncoder::encode_masked() skips every window that
//             touches a corrupted row, the encoder-side mirror of
//             predict_masked(): accuracy degrades by the information the
//             rows carried instead of being poisoned by garbage bits;
//   kScrub  — scrub() rewrites each faulty row from its seed via
//             materialize() and verifies the commissioned CRC afterwards.
//
// A kRematerialized level memory stores nothing, so a scan always comes
// back clean — corruption of rows that do not exist is impossible, which
// is the strongest repair policy of all. The id seed row is stored in both
// modes (it IS the rematerialization source), so it stays guarded.
//
// `seed_available == false` models a deployment that discarded the
// generation seeds after commissioning (stored-mode tables flashed to the
// device, seeds kept only at the factory): detection and masking still
// work, but scrub() refuses, and serving degrades gracefully on masked
// encodings instead (docs/resilience.md).
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "encoding/encoders.h"

namespace generic::resilience {

/// What to do about a corrupted encoder row once a scan finds it.
enum class RepairPolicy {
  kDetect,  ///< count and report only; serve through the damage
  kMask,    ///< re-encode skipping windows that touch corrupted rows
  kScrub,   ///< rematerialize corrupted rows from their seeds, CRC-verified
};

/// Stable short name used in reports and flags ("detect", "mask", "scrub").
std::string_view repair_policy_name(RepairPolicy policy);

/// Parse a repair_policy_name(); throws std::invalid_argument on unknowns.
RepairPolicy repair_policy_from_name(std::string_view name);

class EncoderGuard {
 public:
  /// Snapshot per-row CRCs of a trusted encoder. Pass
  /// `seed_available = false` to model a deployment without generation
  /// seeds: scan/mask still work, scrub() refuses.
  static EncoderGuard commission(const enc::GenericEncoder& encoder,
                                 bool seed_available = true);

  /// Per-row verdicts of one scan; feeds straight into encode_masked().
  struct ScanResult {
    std::vector<bool> level_ok;  ///< one flag per level row
    bool id_ok = true;           ///< the rotating id seed row
    std::size_t num_faulty() const;
    bool all_ok() const { return num_faulty() == 0; }
  };

  /// Scan a (possibly corrupted) encoder against the commissioned CRCs.
  /// Rematerialized level memories have no stored rows and always scan
  /// clean; the id seed row is checked in both storage modes. Throws when
  /// the encoder geometry disagrees with the commissioned one.
  ScanResult scan(const enc::GenericEncoder& encoder) const;

  /// Number of rows (levels + id seed) a scan flags as faulty.
  std::size_t count_faulty(const enc::GenericEncoder& encoder) const;

  /// Repair every faulty row in place by rematerializing it from its seed,
  /// then verify each repaired row against the commissioned CRC — the
  /// PR 7 contract says rematerialization is bit-identical, and this is
  /// where that contract is enforced at runtime (std::runtime_error on any
  /// post-scrub mismatch). Returns how many rows were rewritten. Throws
  /// std::logic_error when commissioned with seed_available == false.
  std::size_t scrub(enc::GenericEncoder& encoder) const;

  std::size_t dims() const { return dims_; }
  std::size_t num_levels() const { return num_levels_; }
  bool seed_available() const { return seed_available_; }

 private:
  EncoderGuard() = default;

  std::size_t dims_ = 0;
  std::size_t num_levels_ = 0;
  bool stored_levels_ = false;
  bool seed_available_ = true;
  std::vector<std::uint32_t> level_crcs_;  ///< one per level row
  std::uint32_t id_crc_ = 0;
};

}  // namespace generic::resilience
