#include "resilience/fault_model.h"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace generic::resilience {
namespace {

/// Apply a per-bit fault to one `bw`-bit two's-complement word.
std::uint32_t corrupt_word(std::uint32_t word, int bw, FaultKind kind,
                           double rate, Rng& rng) {
  for (int b = 0; b < bw; ++b) {
    if (!rng.bernoulli(rate)) continue;
    const std::uint32_t bit = 1u << b;
    switch (kind) {
      case FaultKind::kTransient:
        word ^= bit;
        break;
      case FaultKind::kStuckAt0:
        word &= ~bit;
        break;
      case FaultKind::kStuckAt1:
        word |= bit;
        break;
      case FaultKind::kDeadBlock:
      case FaultKind::kBankCorrelated:
        break;  // handled at block / bank granularity, not per bit
    }
  }
  return word;
}

std::int32_t corrupt_element(std::int32_t v, int bw, FaultKind kind,
                             double rate, Rng& rng) {
  if (bw == 1) {
    // Bipolar 1-bit storage: bit 1 == +1, bit 0 == -1.
    std::uint32_t word = v > 0 ? 1u : 0u;
    word = corrupt_word(word, 1, kind, rate, rng);
    return word ? 1 : -1;
  }
  const auto mask = static_cast<std::uint32_t>((1u << bw) - 1u);
  auto word = static_cast<std::uint32_t>(v) & mask;
  word = corrupt_word(word, bw, kind, rate, rng);
  std::int32_t out = static_cast<std::int32_t>(word);
  if (word & (1u << (bw - 1))) out -= (1 << bw);
  return out;
}

}  // namespace

std::string_view fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kTransient:
      return "transient";
    case FaultKind::kStuckAt0:
      return "stuck_at_0";
    case FaultKind::kStuckAt1:
      return "stuck_at_1";
    case FaultKind::kDeadBlock:
      return "dead_block";
    case FaultKind::kBankCorrelated:
      return "bank_correlated";
  }
  throw std::invalid_argument("fault_kind_name: unknown kind");
}

FaultKind fault_kind_from_name(std::string_view name) {
  for (FaultKind k : {FaultKind::kTransient, FaultKind::kStuckAt0,
                      FaultKind::kStuckAt1, FaultKind::kDeadBlock,
                      FaultKind::kBankCorrelated})
    if (name == fault_kind_name(k)) return k;
  throw std::invalid_argument("unknown fault kind: " + std::string(name));
}

void inject(hdc::BinaryHV& hv, const FaultSpec& spec, Rng& rng,
            std::size_t block) {
  if (spec.rate <= 0.0) return;
  if (spec.kind == FaultKind::kBankCorrelated)
    throw std::invalid_argument(
        "inject: bank-correlated faults target class memory only");
  if (spec.kind == FaultKind::kDeadBlock) {
    if (block == 0) throw std::invalid_argument("inject: zero block size");
    for (std::size_t base = 0; base < hv.dims(); base += block)
      if (rng.bernoulli(spec.rate)) {
        const std::size_t end = std::min(base + block, hv.dims());
        for (std::size_t i = base; i < end; ++i) hv.set(i, false);
      }
    return;
  }
  for (std::size_t i = 0; i < hv.dims(); ++i) {
    if (!rng.bernoulli(spec.rate)) continue;
    switch (spec.kind) {
      case FaultKind::kTransient:
        hv.flip(i);
        break;
      case FaultKind::kStuckAt0:
        hv.set(i, false);
        break;
      case FaultKind::kStuckAt1:
        hv.set(i, true);
        break;
      case FaultKind::kDeadBlock:
      case FaultKind::kBankCorrelated:
        break;  // unreachable
    }
  }
}

void inject(hdc::IntHV& acc, const FaultSpec& spec, Rng& rng, int bit_width,
            std::size_t block) {
  if (spec.rate <= 0.0) return;
  if (bit_width < 1 || bit_width > 16)
    throw std::invalid_argument("inject: bit_width must be in [1, 16]");
  if (spec.kind == FaultKind::kBankCorrelated)
    throw std::invalid_argument(
        "inject: bank-correlated faults target class memory only");
  if (spec.kind == FaultKind::kDeadBlock) {
    if (block == 0) throw std::invalid_argument("inject: zero block size");
    for (std::size_t base = 0; base < acc.size(); base += block)
      if (rng.bernoulli(spec.rate)) {
        const std::size_t end = std::min(base + block, acc.size());
        for (std::size_t i = base; i < end; ++i) acc[i] = 0;
      }
    return;
  }
  for (auto& v : acc) v = corrupt_element(v, bit_width, spec.kind, spec.rate, rng);
}

void inject(model::HdcClassifier& clf, const FaultSpec& spec, Rng& rng) {
  if (spec.rate <= 0.0) return;
  if (spec.kind == FaultKind::kDeadBlock) {
    inject_dead_blocks(clf, sample_dead_chunks(clf.num_chunks(), spec.rate, rng));
    return;
  }
  if (spec.kind == FaultKind::kBankCorrelated) {
    inject_bank_correlated(clf, sample_faulty_banks(spec.rate, rng),
                           spec.burst_rate, rng);
    return;
  }
  const int bw = clf.bit_width();
  for (std::size_t c = 0; c < clf.num_classes(); ++c) {
    auto& vec = clf.mutable_class_vector(c);
    for (auto& v : vec) v = corrupt_element(v, bw, spec.kind, spec.rate, rng);
  }
  // Norms stay stale on purpose (see header).
}

void inject_dead_blocks(model::HdcClassifier& clf,
                        const std::vector<std::size_t>& chunks) {
  const std::size_t chunk = clf.dims() / clf.num_chunks();
  for (std::size_t k : chunks) {
    if (k >= clf.num_chunks())
      throw std::out_of_range("inject_dead_blocks: chunk index");
    for (std::size_t c = 0; c < clf.num_classes(); ++c) {
      auto& vec = clf.mutable_class_vector(c);
      for (std::size_t j = k * chunk; j < (k + 1) * chunk; ++j) vec[j] = 0;
    }
  }
}

std::vector<std::size_t> sample_dead_chunks(std::size_t num_chunks,
                                            double rate, Rng& rng) {
  std::vector<std::size_t> dead;
  for (std::size_t k = 0; k < num_chunks; ++k)
    if (rng.bernoulli(rate)) dead.push_back(k);
  return dead;
}

std::vector<std::size_t> sample_faulty_banks(double rate, Rng& rng) {
  std::vector<std::size_t> banks;
  for (std::size_t b = 0; b < kClassMemoryBanks; ++b)
    if (rng.bernoulli(rate)) banks.push_back(b);
  return banks;
}

void inject_bank_correlated(model::HdcClassifier& clf,
                            const std::vector<std::size_t>& banks,
                            double bit_rate, Rng& rng) {
  if (bit_rate <= 0.0 || banks.empty()) return;
  const int bw = clf.bit_width();
  for (std::size_t c = 0; c < clf.num_classes(); ++c) {
    const std::size_t bank = c % kClassMemoryBanks;
    if (std::find(banks.begin(), banks.end(), bank) == banks.end()) continue;
    auto& vec = clf.mutable_class_vector(c);
    for (auto& v : vec)
      v = corrupt_element(v, bw, FaultKind::kTransient, bit_rate, rng);
  }
  // Norms stay stale on purpose, like every class-memory injector.
}

std::vector<std::size_t> sample_faulty_rows(std::size_t num_rows, double rate,
                                            Rng& rng) {
  std::vector<std::size_t> rows;
  for (std::size_t r = 0; r < num_rows; ++r)
    if (rng.bernoulli(rate)) rows.push_back(r);
  return rows;
}

namespace {

/// The shared per-row corruption rule: dead row reads all-zero, per-bit
/// kinds walk the row in bit order.
void corrupt_row(hdc::BinaryHV& row, FaultKind kind, double bit_rate,
                 Rng& rng) {
  if (kind == FaultKind::kBankCorrelated)
    throw std::invalid_argument(
        "inject_encoder_rows: bank-correlated faults target class memory "
        "only");
  if (kind == FaultKind::kDeadBlock) {
    for (std::size_t i = 0; i < row.dims(); ++i) row.set(i, false);
    return;
  }
  FaultSpec spec;
  spec.kind = kind;
  spec.rate = bit_rate;
  inject(row, spec, rng);
}

}  // namespace

void inject_encoder_rows(hdc::LevelMemory& levels,
                         const std::vector<std::size_t>& rows, FaultKind kind,
                         double bit_rate, Rng& rng) {
  for (std::size_t r : rows) {
    if (r >= levels.num_levels())
      throw std::out_of_range("inject_encoder_rows: row index");
    corrupt_row(levels.mutable_level(r), kind, bit_rate, rng);
  }
}

void inject_id_seed(hdc::SeededItemMemory& ids, FaultKind kind,
                    double bit_rate, Rng& rng) {
  corrupt_row(ids.mutable_seed_id(), kind, bit_rate, rng);
}

}  // namespace generic::resilience
