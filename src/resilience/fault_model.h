// Composable fault model for the §4.3 resilience studies.
//
// GENERIC's low-power story rests on HDC tolerating memory errors: voltage
// over-scaling (§4.3.4) makes SRAM cells unreliable on purpose, and real
// silicon additionally ships with manufacturing defects (stuck cells, dead
// rows) that only get worse near threshold. This module gives every layer
// of the stack one seeded, deterministic way to inject those failure modes:
//
//   kTransient  — independent bit flips at a per-bit rate, the classic
//                 voltage-over-scaling upset model (matches
//                 HdcClassifier::inject_bit_flips / Sram read upsets);
//   kStuckAt0 / kStuckAt1
//               — permanent cell defects: each bit is forced to 0/1 with
//                 the given per-bit probability (manufacturing faults,
//                 aging), so rewriting the model does not heal them;
//   kDeadBlock  — an entire 128-dimension block (one norm2 chunk, i.e. one
//                 class-memory row span per class) reads as zero: the model
//                 of a dead SRAM row / failed bank segment.
//   kBankCorrelated
//               — a correlated burst confined to whole class-memory BANKS:
//                 the GENERIC ASIC stores class accumulators in 16 separate
//                 class memories (§4.2.2), and a marginal bank — a sagging
//                 rail, a failing sense-amp column — corrupts every word it
//                 holds while the other banks stay clean. Each of the 16
//                 banks is hit with probability `rate`; inside a hit bank
//                 every stored bit flips with probability `burst_rate`.
//                 Class c lives in bank c % 16, so with <= 16 classes one
//                 hit bank is one corrupted class vector.
//
// Faults target the three memories of the datapath:
//   * class memory      — inject(HdcClassifier&, ...)
//   * accumulators      — inject(IntHV&, ...), e.g. encoded queries
//   * item/level memory — inject(BinaryHV&, ...), e.g. level rows, id seed
//
// Everything is driven by an explicit Rng so a (spec, seed) pair always
// produces the identical fault pattern — the property the campaign runner
// (campaign.h) and the determinism tests build on.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/rng.h"
#include "hdc/hypervector.h"
#include "hdc/item_memory.h"
#include "model/hdc_classifier.h"

namespace generic::resilience {

enum class FaultKind {
  kTransient,  ///< independent bit flips at `rate` per bit
  kStuckAt0,   ///< each bit stuck to 0 with probability `rate`
  kStuckAt1,   ///< each bit stuck to 1 with probability `rate`
  kDeadBlock,  ///< each 128-dim block dead (reads 0) with probability `rate`
  kBankCorrelated,  ///< each of the 16 class-memory banks hit with
                    ///< probability `rate`; hit banks flip bits at
                    ///< `burst_rate` (class memory only)
};

/// Class-memory banks of the GENERIC ASIC (§4.2.2): 16 separate SRAMs, one
/// class accumulator per bank; class c of a wider model maps to bank c % 16.
inline constexpr std::size_t kClassMemoryBanks = 16;

/// Stable short name used in campaign JSON ("transient", "stuck_at_0", ...).
std::string_view fault_kind_name(FaultKind kind);

/// Parse a fault_kind_name(); throws std::invalid_argument on unknown names.
FaultKind fault_kind_from_name(std::string_view name);

/// One fault population: a kind plus its rate. For the per-bit kinds `rate`
/// is the per-bit probability; for kDeadBlock it is the per-block
/// probability; for kBankCorrelated it is the per-bank probability and
/// `burst_rate` is the per-bit flip rate inside an affected bank. Compose
/// several FaultSpecs by applying them in sequence.
struct FaultSpec {
  FaultKind kind = FaultKind::kTransient;
  double rate = 0.0;
  double burst_rate = 0.05;  ///< used by kBankCorrelated only
};

/// Corrupt a bit-packed bipolar hypervector (item/level memory row).
/// kDeadBlock zeroes whole `block`-dimension spans (bits read 0 == -1).
void inject(hdc::BinaryHV& hv, const FaultSpec& spec, Rng& rng,
            std::size_t block = 128);

/// Corrupt a bundled accumulator. Elements are treated as `bit_width`-bit
/// two's-complement words exactly as the class SRAM stores them (bipolar
/// encoding for bit_width == 1, matching HdcClassifier::inject_bit_flips).
/// kDeadBlock zeroes whole `block`-element spans.
void inject(hdc::IntHV& acc, const FaultSpec& spec, Rng& rng, int bit_width,
            std::size_t block = 128);

/// Corrupt a classifier's class memory. Per-bit kinds draw one Bernoulli
/// per stored bit; kDeadBlock kills the same chunk across *all* classes
/// (a dead norm2-chunk-aligned row span serves every class row in it).
/// Chunk norms are intentionally left stale — the ASIC keeps them in the
/// separate, nominally-powered norm2 memory — which is exactly what lets
/// BlockGuard detect the damage.
void inject(model::HdcClassifier& clf, const FaultSpec& spec, Rng& rng);

/// Deterministically kill an explicit set of chunk-aligned blocks across
/// all classes (for targeted experiments and tests).
void inject_dead_blocks(model::HdcClassifier& clf,
                        const std::vector<std::size_t>& chunks);

/// The per-block decision the classifier-level kDeadBlock inject() makes:
/// one Bernoulli(rate) draw per chunk. Exposed so callers can learn the
/// ground-truth dead set by replaying the same rng state.
std::vector<std::size_t> sample_dead_chunks(std::size_t num_chunks,
                                            double rate, Rng& rng);

/// The per-bank decision the kBankCorrelated inject() makes: exactly
/// kClassMemoryBanks Bernoulli(rate) draws, in bank order, REGARDLESS of
/// how many classes the model holds — the fault pattern is a property of
/// the 16 physical banks, not of the model mapped onto them. Exposed so
/// callers (the chaos orchestrator, tests) can learn the ground-truth hit
/// set by replaying the same rng state.
std::vector<std::size_t> sample_faulty_banks(double rate, Rng& rng);

/// Deterministically corrupt an explicit set of class-memory banks: every
/// class c with c % kClassMemoryBanks in `banks` suffers independent bit
/// flips at `bit_rate` per stored bit (classes ascending, elements in
/// order — bit-exact for a fixed rng state). Chunk norms stay stale, like
/// every class-memory injector (see inject() above).
void inject_bank_correlated(model::HdcClassifier& clf,
                            const std::vector<std::size_t>& banks,
                            double bit_rate, Rng& rng);

/// The per-row decision for encoder-memory bursts: one Bernoulli(rate) draw
/// per row, in row order — the encoder-SRAM analogue of
/// sample_faulty_banks(). Exposed so callers (EncoderGuard tests, the chaos
/// encoder script) can learn the ground-truth hit set by replaying the same
/// rng state.
std::vector<std::size_t> sample_faulty_rows(std::size_t num_rows, double rate,
                                            Rng& rng);

/// Deterministically corrupt an explicit set of level-memory rows (rows
/// ascending, bits in order — bit-exact for a fixed rng state). kDeadBlock
/// models a dead SRAM row: the whole row reads 0. The per-bit kinds flip /
/// stick each bit of a listed row with probability `bit_rate`. Stored mode
/// only — a kRematerialized LevelMemory holds no rows to corrupt (that
/// immunity is the point of PR 7) and mutable_level() throws.
void inject_encoder_rows(hdc::LevelMemory& levels,
                         const std::vector<std::size_t>& rows, FaultKind kind,
                         double bit_rate, Rng& rng);

/// Corrupt the rotating-id seed row of a SeededItemMemory with the same
/// per-row semantics as inject_encoder_rows(). The seed row is always
/// stored (it IS the rematerialization source), so this works in both
/// storage modes — which is why id_seed campaigns still bite a remat
/// encoder.
void inject_id_seed(hdc::SeededItemMemory& ids, FaultKind kind,
                    double bit_rate, Rng& rng);

}  // namespace generic::resilience
