// Monte Carlo fault-injection campaign over a trained HdcClassifier.
//
// Sweeps fault kind x rate; each grid cell runs `trials` independent
// seeded trials: copy the model, inject the fault population, evaluate
// accuracy on a fixed encoded test set, and aggregate mean / stddev /
// min / max. With `degrade` enabled each trial additionally runs the
// BlockGuard detect-and-mask policy before evaluation, so the output
// quantifies both raw resilience (the paper's voltage-over-scaling
// argument, Figure 6) and the recovered accuracy of the degradation path.
//
// Determinism contract: every trial's fault pattern derives from
// (cfg.seed, kind index, rate index, trial index) alone, so the same
// configuration always produces byte-identical JSON — asserted by
// tests/resilience/campaign_test.cpp and relied on by the bench harness.
//
// JSON schema (see docs/resilience.md):
//   {
//     "schema": "generic.fault_campaign.v1",
//     "seed": ..., "trials": ..., "dims": ..., "classes": ...,
//     "bit_width": ..., "chunk": ..., "degrade": true|false,
//     "target": "class_memory"|"level_memory"|"id_seed",
//     "samples": ..., "baseline_accuracy": ...,
//     "cells": [
//       {"fault": "transient", "rate": ..., "mean_accuracy": ...,
//        "stddev_accuracy": ..., "min_accuracy": ..., "max_accuracy": ...,
//        "mean_blocks_masked": ...}, ...
//     ]
//   }
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/thread_pool.h"
#include "encoding/encoders.h"
#include "hdc/hypervector.h"
#include "model/hdc_classifier.h"
#include "resilience/fault_model.h"

namespace generic::resilience {

/// Which memory of the datapath a campaign corrupts. kClassMemory is the
/// classic run_campaign sweep; the encoder targets (run_encoder_campaign)
/// cover the other two SRAMs of the §4 datapath — the level memory rows
/// and the §4.3.1 rotating id seed — whose injectors existed but were
/// never swept by the runner.
enum class FaultTarget {
  kClassMemory,
  kLevelMemory,
  kIdSeed,
};

/// Stable short name used in campaign JSON ("class_memory", ...).
std::string_view fault_target_name(FaultTarget target);

struct CampaignConfig {
  std::vector<FaultKind> kinds{FaultKind::kTransient, FaultKind::kStuckAt0,
                               FaultKind::kStuckAt1, FaultKind::kDeadBlock};
  /// Per-bit (or per-block for kDeadBlock) fault rates to sweep.
  std::vector<double> rates{0.0, 1e-4, 1e-3, 1e-2, 0.05, 0.1};
  std::size_t trials = 5;
  std::uint64_t seed = 0xFA17;
  /// Run BlockGuard detection + masked inference inside each trial.
  bool degrade = false;
  /// Pool lanes for the Monte Carlo fan-out (1 == serial). Results are
  /// byte-identical for any value: every trial's fault pattern depends on
  /// its (kind, rate, trial) indices alone and trial statistics are
  /// reduced in trial-index order.
  std::size_t threads = 1;
};

struct CampaignCell {
  FaultKind kind = FaultKind::kTransient;
  double rate = 0.0;
  double mean_accuracy = 0.0;
  double stddev_accuracy = 0.0;
  double min_accuracy = 0.0;
  double max_accuracy = 0.0;
  /// Mean number of blocks masked per trial (0 unless cfg.degrade).
  double mean_blocks_masked = 0.0;
};

struct CampaignResult {
  std::uint64_t seed = 0;
  std::size_t trials = 0;
  std::size_t dims = 0;
  std::size_t classes = 0;
  std::size_t chunk = 0;
  int bit_width = 0;
  bool degrade = false;
  FaultTarget target = FaultTarget::kClassMemory;
  std::size_t samples = 0;
  /// Encoder-campaign gauges (encoder targets only; zero otherwise): the
  /// storage mode and live item/level payload of the encoder under test.
  /// A kRematerialized encoder holds ~one seed row, which is also why its
  /// level-memory cells sit exactly at baseline — there are no stored rows
  /// for the fault population to bite.
  bool encoder_remat = false;
  std::size_t encoder_footprint_bytes = 0;
  double baseline_accuracy = 0.0;  ///< fault-free accuracy of the model
  std::vector<CampaignCell> cells;  ///< kinds x rates, kind-major order
};

/// Run the campaign. `encoded` / `labels` are the fixed evaluation set
/// (encode once, reuse across all trials). The input model is never
/// mutated; every trial works on a copy. With cfg.threads > 1 the trials
/// of each cell fan out across a pool.
CampaignResult run_campaign(const model::HdcClassifier& model,
                            std::span<const hdc::IntHV> encoded,
                            std::span<const int> labels,
                            const CampaignConfig& cfg);

/// Encoder-memory campaign: each trial corrupts the encoder's level rows
/// (kLevelMemory) or its rotating id seed (kIdSeed) with the cell's fault
/// population, re-encodes the raw evaluation samples through the damaged
/// memories, scores them against the *fault-free* classifier, then
/// restores the encoder. Trials run sequentially (they share the encoder)
/// but each trial's re-encoding fans out across cfg.threads lanes —
/// byte-identical JSON for any lane count. kDeadBlock kills 128-dim row
/// spans of every level row / the seed row. The encoder is returned to its
/// commissioned state on exit.
CampaignResult run_encoder_campaign(enc::GenericEncoder& encoder,
                                    const model::HdcClassifier& model,
                                    std::span<const std::vector<float>> samples,
                                    std::span<const int> labels,
                                    const CampaignConfig& cfg,
                                    FaultTarget target);

/// Render a result as pretty-printed JSON. Pure function of the result —
/// same result, byte-identical string.
std::string campaign_to_json(const CampaignResult& result);

/// Write campaign_to_json() to a file; throws std::runtime_error on I/O
/// failure.
void write_campaign_json(const std::string& path,
                         const CampaignResult& result);

}  // namespace generic::resilience
