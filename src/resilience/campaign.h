// Monte Carlo fault-injection campaign over a trained HdcClassifier.
//
// Sweeps fault kind x rate; each grid cell runs `trials` independent
// seeded trials: copy the model, inject the fault population, evaluate
// accuracy on a fixed encoded test set, and aggregate mean / stddev /
// min / max. With `degrade` enabled each trial additionally runs the
// BlockGuard detect-and-mask policy before evaluation, so the output
// quantifies both raw resilience (the paper's voltage-over-scaling
// argument, Figure 6) and the recovered accuracy of the degradation path.
//
// Determinism contract: every trial's fault pattern derives from
// (cfg.seed, kind index, rate index, trial index) alone, so the same
// configuration always produces byte-identical JSON — asserted by
// tests/resilience/campaign_test.cpp and relied on by the bench harness.
//
// JSON schema (see docs/resilience.md):
//   {
//     "schema": "generic.fault_campaign.v1",
//     "seed": ..., "trials": ..., "dims": ..., "classes": ...,
//     "bit_width": ..., "chunk": ..., "degrade": true|false,
//     "samples": ..., "baseline_accuracy": ...,
//     "cells": [
//       {"fault": "transient", "rate": ..., "mean_accuracy": ...,
//        "stddev_accuracy": ..., "min_accuracy": ..., "max_accuracy": ...,
//        "mean_blocks_masked": ...}, ...
//     ]
//   }
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "hdc/hypervector.h"
#include "model/hdc_classifier.h"
#include "resilience/fault_model.h"

namespace generic::resilience {

struct CampaignConfig {
  std::vector<FaultKind> kinds{FaultKind::kTransient, FaultKind::kStuckAt0,
                               FaultKind::kStuckAt1, FaultKind::kDeadBlock};
  /// Per-bit (or per-block for kDeadBlock) fault rates to sweep.
  std::vector<double> rates{0.0, 1e-4, 1e-3, 1e-2, 0.05, 0.1};
  std::size_t trials = 5;
  std::uint64_t seed = 0xFA17;
  /// Run BlockGuard detection + masked inference inside each trial.
  bool degrade = false;
};

struct CampaignCell {
  FaultKind kind = FaultKind::kTransient;
  double rate = 0.0;
  double mean_accuracy = 0.0;
  double stddev_accuracy = 0.0;
  double min_accuracy = 0.0;
  double max_accuracy = 0.0;
  /// Mean number of blocks masked per trial (0 unless cfg.degrade).
  double mean_blocks_masked = 0.0;
};

struct CampaignResult {
  std::uint64_t seed = 0;
  std::size_t trials = 0;
  std::size_t dims = 0;
  std::size_t classes = 0;
  std::size_t chunk = 0;
  int bit_width = 0;
  bool degrade = false;
  std::size_t samples = 0;
  double baseline_accuracy = 0.0;  ///< fault-free accuracy of the model
  std::vector<CampaignCell> cells;  ///< kinds x rates, kind-major order
};

/// Run the campaign. `encoded` / `labels` are the fixed evaluation set
/// (encode once, reuse across all trials). The input model is never
/// mutated; every trial works on a copy.
CampaignResult run_campaign(const model::HdcClassifier& model,
                            std::span<const hdc::IntHV> encoded,
                            std::span<const int> labels,
                            const CampaignConfig& cfg);

/// Render a result as pretty-printed JSON. Pure function of the result —
/// same result, byte-identical string.
std::string campaign_to_json(const CampaignResult& result);

/// Write campaign_to_json() to a file; throws std::runtime_error on I/O
/// failure.
void write_campaign_json(const std::string& path,
                         const CampaignResult& result);

}  // namespace generic::resilience
