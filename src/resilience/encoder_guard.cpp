#include "resilience/encoder_guard.h"

#include <stdexcept>
#include <string>

#include "model/model_io.h"

namespace generic::resilience {
namespace {

/// CRC32 over the packed words of one row. Tail bits beyond dims are kept
/// zero by every BinaryHV operation, so the digest is well defined.
std::uint32_t row_crc(const hdc::BinaryHV& hv) {
  const auto words = hv.words();
  return model::crc32(reinterpret_cast<const std::uint8_t*>(words.data()),
                      words.size() * sizeof(std::uint64_t));
}

}  // namespace

std::string_view repair_policy_name(RepairPolicy policy) {
  switch (policy) {
    case RepairPolicy::kDetect:
      return "detect";
    case RepairPolicy::kMask:
      return "mask";
    case RepairPolicy::kScrub:
      return "scrub";
  }
  throw std::invalid_argument("repair_policy_name: unknown policy");
}

RepairPolicy repair_policy_from_name(std::string_view name) {
  for (RepairPolicy p :
       {RepairPolicy::kDetect, RepairPolicy::kMask, RepairPolicy::kScrub})
    if (name == repair_policy_name(p)) return p;
  throw std::invalid_argument("unknown repair policy: " + std::string(name));
}

std::size_t EncoderGuard::ScanResult::num_faulty() const {
  std::size_t n = id_ok ? 0 : 1;
  for (bool ok : level_ok)
    if (!ok) ++n;
  return n;
}

EncoderGuard EncoderGuard::commission(const enc::GenericEncoder& encoder,
                                      bool seed_available) {
  const auto& levels = encoder.level_memory();
  EncoderGuard g;
  g.dims_ = levels.dims();
  g.num_levels_ = levels.num_levels();
  g.stored_levels_ = levels.storage() == hdc::ItemStorage::kStored;
  g.seed_available_ = seed_available;
  if (g.stored_levels_) {
    g.level_crcs_.reserve(g.num_levels_);
    for (std::size_t l = 0; l < g.num_levels_; ++l)
      g.level_crcs_.push_back(row_crc(levels.level(l)));
  }
  g.id_crc_ = row_crc(encoder.id_memory().seed_id());
  return g;
}

EncoderGuard::ScanResult EncoderGuard::scan(
    const enc::GenericEncoder& encoder) const {
  const auto& levels = encoder.level_memory();
  if (levels.dims() != dims_ || levels.num_levels() != num_levels_ ||
      (levels.storage() == hdc::ItemStorage::kStored) != stored_levels_)
    throw std::invalid_argument("EncoderGuard::scan: geometry mismatch");
  ScanResult r;
  // Rematerialized level memories store nothing, so there is nothing a
  // fault could have landed in — every row scans clean by construction.
  r.level_ok.assign(num_levels_, true);
  if (stored_levels_)
    for (std::size_t l = 0; l < num_levels_; ++l)
      r.level_ok[l] = row_crc(levels.level(l)) == level_crcs_[l];
  r.id_ok = row_crc(encoder.id_memory().seed_id()) == id_crc_;
  return r;
}

std::size_t EncoderGuard::count_faulty(
    const enc::GenericEncoder& encoder) const {
  return scan(encoder).num_faulty();
}

std::size_t EncoderGuard::scrub(enc::GenericEncoder& encoder) const {
  if (!seed_available_)
    throw std::logic_error(
        "EncoderGuard::scrub: no generation seed available — mask and step "
        "the dims ladder instead");
  const ScanResult before = scan(encoder);
  std::size_t repaired = 0;
  auto& levels = encoder.mutable_level_memory();
  for (std::size_t l = 0; l < num_levels_; ++l) {
    if (before.level_ok[l]) continue;
    levels.mutable_level(l) = levels.materialize(l);
    if (row_crc(levels.level(l)) != level_crcs_[l])
      throw std::runtime_error(
          "EncoderGuard::scrub: rematerialized level row failed CRC "
          "verification");
    ++repaired;
  }
  if (!before.id_ok) {
    encoder.mutable_id_memory().mutable_seed_id() =
        encoder.materialize_id_seed();
    if (row_crc(encoder.id_memory().seed_id()) != id_crc_)
      throw std::runtime_error(
          "EncoderGuard::scrub: rematerialized id seed failed CRC "
          "verification");
    ++repaired;
  }
  return repaired;
}

}  // namespace generic::resilience
