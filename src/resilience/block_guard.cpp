#include "resilience/block_guard.h"

#include <stdexcept>

namespace generic::resilience {
namespace {

std::uint32_t chunk_crc(const hdc::IntHV& vec, std::size_t chunk_index,
                        std::size_t chunk) {
  const auto* bytes =
      reinterpret_cast<const std::uint8_t*>(vec.data() + chunk_index * chunk);
  return model::crc32(bytes, chunk * sizeof(std::int32_t));
}

std::int64_t chunk_norm2(const hdc::IntHV& vec, std::size_t chunk_index,
                         std::size_t chunk) {
  std::int64_t acc = 0;
  for (std::size_t j = chunk_index * chunk; j < (chunk_index + 1) * chunk; ++j)
    acc += static_cast<std::int64_t>(vec[j]) * vec[j];
  return acc;
}

}  // namespace

BlockGuard BlockGuard::commission(const model::HdcClassifier& clf) {
  BlockGuard g;
  g.dims_ = clf.dims();
  g.num_classes_ = clf.num_classes();
  g.num_chunks_ = clf.num_chunks();
  g.chunk_ = clf.dims() / clf.num_chunks();
  g.crcs_.resize(g.num_classes_ * g.num_chunks_);
  for (std::size_t c = 0; c < g.num_classes_; ++c)
    for (std::size_t k = 0; k < g.num_chunks_; ++k)
      g.crcs_[c * g.num_chunks_ + k] =
          chunk_crc(clf.class_vector(c), k, g.chunk_);
  return g;
}

std::vector<bool> BlockGuard::scan(const model::HdcClassifier& clf) const {
  if (clf.dims() != dims_ || clf.num_classes() != num_classes_ ||
      clf.num_chunks() != num_chunks_)
    throw std::invalid_argument("BlockGuard::scan: geometry mismatch");
  std::vector<bool> ok(num_chunks_, true);
  for (std::size_t k = 0; k < num_chunks_; ++k) {
    for (std::size_t c = 0; c < num_classes_ && ok[k]; ++c) {
      const auto& vec = clf.class_vector(c);
      if (chunk_crc(vec, k, chunk_) != crcs_[c * num_chunks_ + k] ||
          chunk_norm2(vec, k, chunk_) != clf.chunk_norm(c, k))
        ok[k] = false;
    }
  }
  return ok;
}

std::size_t BlockGuard::count_faulty(const model::HdcClassifier& clf) const {
  std::size_t n = 0;
  for (bool ok : scan(clf))
    if (!ok) ++n;
  return n;
}

std::size_t BlockGuard::scrub(model::HdcClassifier& clf,
                              const model::HdcClassifier& golden) const {
  if (golden.dims() != dims_ || golden.num_classes() != num_classes_ ||
      golden.num_chunks() != num_chunks_)
    throw std::invalid_argument("BlockGuard::scrub: golden geometry mismatch");
  const auto ok = scan(clf);
  std::size_t repaired = 0;
  for (std::size_t k = 0; k < num_chunks_; ++k) {
    if (ok[k]) continue;
    for (std::size_t c = 0; c < num_classes_; ++c) {
      auto& vec = clf.mutable_class_vector(c);
      const auto& gold = golden.class_vector(c);
      for (std::size_t j = k * chunk_; j < (k + 1) * chunk_; ++j)
        vec[j] = gold[j];
    }
    ++repaired;
  }
  if (repaired > 0)
    for (std::size_t c = 0; c < num_classes_; ++c) clf.recompute_norms(c);
  return repaired;
}

std::size_t BlockGuard::scrub_from_blob(
    model::HdcClassifier& clf, const std::vector<std::uint8_t>& blob) const {
  const model::SavedModel golden = model::deserialize_model(blob);
  return scrub(clf, golden.classifier);
}

}  // namespace generic::resilience
