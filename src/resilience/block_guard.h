// Graceful degradation for faulty 128-dimension blocks.
//
// The ASIC already keeps one piece of redundancy per (class, chunk): the
// squared sub-norm in the nominally-powered norm2 memory (§4.3.3). A
// BlockGuard adds the second piece — a CRC32 per (class, chunk) computed
// at commission time from a trusted model — and combines both into a
// detector:
//
//   block k is FAULTY when, for any class c,
//     crc32(values of chunk k of class c) != commissioned crc, OR
//     recomputed ||chunk||^2              != stored chunk_norm(c, k)
//
// The norm check is free (the injectors deliberately leave chunk norms
// stale, mirroring the hardware's separate norm2 array); the CRC catches
// the corner cases norms miss (e.g. sign flips that preserve the square).
//
// A detected-faulty block is then either
//   * masked — predict_masked() skips its dimensions in the similarity
//     search, the same trick as §4.3.3 on-demand dimension reduction, so
//     accuracy degrades by the information the block carried instead of
//     being poisoned by garbage values; or
//   * scrubbed — repaired in place from a CRC-verified golden model blob
//     (model_io), the software mirror of an ECC refill from backing store.
#pragma once

#include <cstdint>
#include <vector>

#include "model/hdc_classifier.h"
#include "model/model_io.h"

namespace generic::resilience {

class BlockGuard {
 public:
  /// Snapshot per-block CRCs (and golden chunk norms) of a trusted model.
  static BlockGuard commission(const model::HdcClassifier& clf);

  std::size_t num_chunks() const { return num_chunks_; }
  std::size_t num_classes() const { return num_classes_; }

  /// Scan a (possibly corrupted) model; `ok[k]` is true when chunk k passed
  /// both the CRC and the sub-norm cross-check for every class. The model
  /// must have the same geometry as the commissioned one.
  std::vector<bool> scan(const model::HdcClassifier& clf) const;

  /// Number of blocks a scan flags as faulty.
  std::size_t count_faulty(const model::HdcClassifier& clf) const;

  /// Repair every faulty block in place from a golden model (typically the
  /// deserialized, CRC-verified blob the model was deployed from); restores
  /// values and chunk norms of the repaired blocks and returns how many
  /// blocks were rewritten. Throws when geometries disagree. Note that a
  /// truly dead SRAM block will fail again on the next scan — scrubbing
  /// heals transient and stuck-at-masked-by-rewrite damage, masking handles
  /// the rest.
  std::size_t scrub(model::HdcClassifier& clf,
                    const model::HdcClassifier& golden) const;

  /// Convenience: deserialize `blob` (CRC-verified by model_io) and scrub
  /// from its classifier.
  std::size_t scrub_from_blob(model::HdcClassifier& clf,
                              const std::vector<std::uint8_t>& blob) const;

 private:
  BlockGuard() = default;

  std::size_t dims_ = 0;
  std::size_t num_classes_ = 0;
  std::size_t num_chunks_ = 0;
  std::size_t chunk_ = 0;
  /// crcs_[c * num_chunks_ + k] over the raw int32 bytes of the chunk.
  std::vector<std::uint32_t> crcs_;
};

}  // namespace generic::resilience
