#include "resilience/campaign.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <optional>
#include <stdexcept>

#include "obs/obs.h"
#include "resilience/block_guard.h"

namespace generic::resilience {
namespace {

/// Seed for one (kind, rate, trial) cell: a splitmix64 hash of the indices
/// so trial seeds are independent of sweep order and grid shape.
std::uint64_t trial_seed(std::uint64_t base, std::size_t kind_index,
                         std::size_t rate_index, std::size_t trial) {
  std::uint64_t sm = base;
  sm ^= splitmix64(sm) + 0x9E3779B97F4A7C15ULL * (kind_index + 1);
  sm ^= splitmix64(sm) + 0xBF58476D1CE4E5B9ULL * (rate_index + 1);
  sm ^= splitmix64(sm) + 0x94D049BB133111EBULL * (trial + 1);
  return splitmix64(sm);
}

double evaluate(const model::HdcClassifier& clf,
                std::span<const hdc::IntHV> encoded,
                std::span<const int> labels) {
  std::size_t hits = 0;
  for (std::size_t i = 0; i < encoded.size(); ++i)
    hits += clf.predict(encoded[i]) == labels[i];
  return static_cast<double>(hits) / static_cast<double>(encoded.size());
}

double evaluate_masked(const model::HdcClassifier& clf,
                       const std::vector<bool>& ok,
                       std::span<const hdc::IntHV> encoded,
                       std::span<const int> labels) {
  std::size_t hits = 0;
  for (std::size_t i = 0; i < encoded.size(); ++i)
    hits += clf.predict_masked(encoded[i], ok) == labels[i];
  return static_cast<double>(hits) / static_cast<double>(encoded.size());
}

/// Fixed-format double for the JSON output: enough digits to round-trip
/// an accuracy, no locale dependence.
void append_double(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  out += buf;
}

/// Per-trial outcome collected by the Monte Carlo fan-out.
struct TrialOutcome {
  double accuracy = 0.0;
  double blocks_masked = 0.0;
};

/// Reduce one cell's trials in trial-index order. Min/max/mean/stddev over
/// the same values in the same order — byte-identical statistics whether
/// the trials ran serially or across a pool.
CampaignCell aggregate_cell(FaultKind kind, double rate,
                            const std::vector<TrialOutcome>& trials) {
  CampaignCell cell;
  cell.kind = kind;
  cell.rate = rate;
  const auto n = static_cast<double>(trials.size());
  double lo = 1.0, hi = 0.0, sum = 0.0, masked_sum = 0.0;
  for (const auto& t : trials) {
    lo = std::min(lo, t.accuracy);
    hi = std::max(hi, t.accuracy);
    sum += t.accuracy;
    masked_sum += t.blocks_masked;
  }
  cell.mean_accuracy = sum / n;
  // Two-pass variance: exact zero for identical trials, unlike the
  // cancellation-prone E[x^2] - E[x]^2 form.
  double ss = 0.0;
  for (const auto& t : trials)
    ss += (t.accuracy - cell.mean_accuracy) * (t.accuracy - cell.mean_accuracy);
  cell.stddev_accuracy = std::sqrt(ss / n);
  cell.min_accuracy = lo;
  cell.max_accuracy = hi;
  cell.mean_blocks_masked = masked_sum / n;
  return cell;
}

}  // namespace

std::string_view fault_target_name(FaultTarget target) {
  switch (target) {
    case FaultTarget::kClassMemory: return "class_memory";
    case FaultTarget::kLevelMemory: return "level_memory";
    case FaultTarget::kIdSeed: return "id_seed";
  }
  return "?";
}

CampaignResult run_campaign(const model::HdcClassifier& model,
                            std::span<const hdc::IntHV> encoded,
                            std::span<const int> labels,
                            const CampaignConfig& cfg) {
  if (encoded.size() != labels.size() || encoded.empty())
    throw std::invalid_argument("run_campaign: bad evaluation set");
  if (cfg.trials == 0 || cfg.kinds.empty() || cfg.rates.empty())
    throw std::invalid_argument("run_campaign: empty sweep");

  CampaignResult res;
  res.seed = cfg.seed;
  res.trials = cfg.trials;
  res.dims = model.dims();
  res.classes = model.num_classes();
  res.chunk = model.dims() / model.num_chunks();
  res.bit_width = model.bit_width();
  res.degrade = cfg.degrade;
  res.samples = encoded.size();
  {
    GENERIC_SPAN("campaign.baseline");
    res.baseline_accuracy = evaluate(model, encoded, labels);
  }

  std::optional<BlockGuard> guard;
  if (cfg.degrade) guard = BlockGuard::commission(model);

  // Monte Carlo fan-out: each trial is a pure function of its
  // (kind, rate, trial) indices — a private Rng, a private model copy, a
  // read-only evaluation set — so trials spread across the pool freely and
  // aggregate_cell() reduces them in trial-index order.
  ThreadPool pool(cfg.threads == 0 ? 1 : cfg.threads);

  for (std::size_t ki = 0; ki < cfg.kinds.size(); ++ki) {
    for (std::size_t ri = 0; ri < cfg.rates.size(); ++ri) {
      const FaultKind kind = cfg.kinds[ki];
      const double rate = cfg.rates[ri];
      GENERIC_SPAN("campaign.cell");
      const auto trials = pool.parallel_map<TrialOutcome>(
          cfg.trials, [&](std::size_t t) {
            GENERIC_SPAN("campaign.trial");
            GENERIC_COUNTER_ADD("campaign.trials", 1);
            Rng rng(trial_seed(cfg.seed, ki, ri, t));
            model::HdcClassifier faulty = model;
            inject(faulty, FaultSpec{kind, rate}, rng);
            TrialOutcome out;
            if (cfg.degrade) {
              const auto ok = guard->scan(faulty);
              const auto masked = static_cast<std::size_t>(
                  std::count(ok.begin(), ok.end(), false));
              out.blocks_masked = static_cast<double>(masked);
              // When every block is flagged (saturating corruption) masking
              // would leave nothing to score; fall back to raw inference.
              out.accuracy = masked == ok.size()
                                 ? evaluate(faulty, encoded, labels)
                                 : evaluate_masked(faulty, ok, encoded, labels);
            } else {
              out.accuracy = evaluate(faulty, encoded, labels);
            }
            return out;
          });
      res.cells.push_back(aggregate_cell(kind, rate, trials));
    }
  }
  return res;
}

CampaignResult run_encoder_campaign(enc::GenericEncoder& encoder,
                                    const model::HdcClassifier& model,
                                    std::span<const std::vector<float>> samples,
                                    std::span<const int> labels,
                                    const CampaignConfig& cfg,
                                    FaultTarget target) {
  if (samples.size() != labels.size() || samples.empty())
    throw std::invalid_argument("run_encoder_campaign: bad evaluation set");
  if (cfg.trials == 0 || cfg.kinds.empty() || cfg.rates.empty())
    throw std::invalid_argument("run_encoder_campaign: empty sweep");
  if (target == FaultTarget::kClassMemory)
    throw std::invalid_argument(
        "run_encoder_campaign: use run_campaign for the class memory");
  if (cfg.degrade)
    throw std::invalid_argument(
        "run_encoder_campaign: BlockGuard degrades the class memory only");

  ThreadPool pool(cfg.threads == 0 ? 1 : cfg.threads);

  CampaignResult res;
  res.seed = cfg.seed;
  res.trials = cfg.trials;
  res.dims = model.dims();
  res.classes = model.num_classes();
  res.chunk = model.dims() / model.num_chunks();
  res.bit_width = model.bit_width();
  res.degrade = false;
  res.target = target;
  res.samples = samples.size();
  res.encoder_remat = encoder.level_memory().storage() ==
                      hdc::ItemStorage::kRematerialized;
  res.encoder_footprint_bytes = encoder.memory_footprint_bytes();

  auto evaluate_encoder = [&] {
    const auto encoded = encoder.encode_batch(samples, pool);
    std::size_t hits = 0;
    for (std::size_t i = 0; i < encoded.size(); ++i)
      hits += model.predict(encoded[i]) == labels[i];
    return static_cast<double>(hits) / static_cast<double>(encoded.size());
  };
  {
    GENERIC_SPAN("campaign.baseline");
    res.baseline_accuracy = evaluate_encoder();
  }

  // Commissioned (golden) encoder memory contents, restored after every
  // trial so faults never accumulate across the sweep. A kRematerialized
  // level memory stores no rows: nothing to snapshot, nothing to corrupt —
  // its kLevelMemory cells measure exactly that immunity. The id seed row
  // is stored in both modes, so kIdSeed campaigns bite either way.
  auto& levels = encoder.mutable_level_memory();
  auto& ids = encoder.mutable_id_memory();
  std::vector<hdc::BinaryHV> golden_levels;
  if (!res.encoder_remat) {
    golden_levels.reserve(levels.num_levels());
    for (std::size_t l = 0; l < levels.num_levels(); ++l)
      golden_levels.push_back(levels.level(l));
  }
  const hdc::BinaryHV golden_seed = ids.seed_id();

  for (std::size_t ki = 0; ki < cfg.kinds.size(); ++ki) {
    for (std::size_t ri = 0; ri < cfg.rates.size(); ++ri) {
      const FaultKind kind = cfg.kinds[ki];
      const double rate = cfg.rates[ri];
      GENERIC_SPAN("campaign.cell");
      std::vector<TrialOutcome> trials(cfg.trials);
      // Trials share the mutable encoder, so they stay sequential; the
      // per-trial re-encoding inside evaluate_encoder() is where the pool
      // fans out.
      for (std::size_t t = 0; t < cfg.trials; ++t) {
        GENERIC_SPAN("campaign.trial");
        GENERIC_COUNTER_ADD("campaign.trials", 1);
        Rng rng(trial_seed(cfg.seed, ki, ri, t));
        const FaultSpec spec{kind, rate};
        if (target == FaultTarget::kLevelMemory) {
          if (!res.encoder_remat)
            for (std::size_t l = 0; l < levels.num_levels(); ++l)
              inject(levels.mutable_level(l), spec, rng);
        } else {
          inject(ids.mutable_seed_id(), spec, rng);
        }
        trials[t].accuracy = evaluate_encoder();
        if (!res.encoder_remat)
          for (std::size_t l = 0; l < levels.num_levels(); ++l)
            levels.mutable_level(l) = golden_levels[l];
        ids.mutable_seed_id() = golden_seed;
      }
      res.cells.push_back(aggregate_cell(kind, rate, trials));
    }
  }
  return res;
}

std::string campaign_to_json(const CampaignResult& result) {
  std::string out;
  out.reserve(1024 + result.cells.size() * 192);
  out += "{\n";
  out += "  \"schema\": \"generic.fault_campaign.v1\",\n";
  out += "  \"seed\": " + std::to_string(result.seed) + ",\n";
  out += "  \"trials\": " + std::to_string(result.trials) + ",\n";
  out += "  \"dims\": " + std::to_string(result.dims) + ",\n";
  out += "  \"classes\": " + std::to_string(result.classes) + ",\n";
  out += "  \"chunk\": " + std::to_string(result.chunk) + ",\n";
  out += "  \"bit_width\": " + std::to_string(result.bit_width) + ",\n";
  out += std::string("  \"degrade\": ") +
         (result.degrade ? "true" : "false") + ",\n";
  out += "  \"target\": \"";
  out += fault_target_name(result.target);
  out += "\",\n";
  out += "  \"samples\": " + std::to_string(result.samples) + ",\n";
  if (result.target != FaultTarget::kClassMemory) {
    // Encoder-only block, absent from class-memory reports so their
    // committed goldens keep rendering byte-identically.
    out += std::string("  \"encoder\": {\"remat\": ") +
           (result.encoder_remat ? "true" : "false") +
           ", \"footprint_bytes\": " +
           std::to_string(result.encoder_footprint_bytes) + "},\n";
  }
  out += "  \"baseline_accuracy\": ";
  append_double(out, result.baseline_accuracy);
  out += ",\n  \"cells\": [\n";
  for (std::size_t i = 0; i < result.cells.size(); ++i) {
    const auto& c = result.cells[i];
    out += "    {\"fault\": \"";
    out += fault_kind_name(c.kind);
    out += "\", \"rate\": ";
    append_double(out, c.rate);
    out += ", \"mean_accuracy\": ";
    append_double(out, c.mean_accuracy);
    out += ", \"stddev_accuracy\": ";
    append_double(out, c.stddev_accuracy);
    out += ", \"min_accuracy\": ";
    append_double(out, c.min_accuracy);
    out += ", \"max_accuracy\": ";
    append_double(out, c.max_accuracy);
    out += ", \"mean_blocks_masked\": ";
    append_double(out, c.mean_blocks_masked);
    out += i + 1 < result.cells.size() ? "},\n" : "}\n";
  }
  out += "  ]\n}\n";
  return out;
}

void write_campaign_json(const std::string& path,
                         const CampaignResult& result) {
  std::ofstream f(path, std::ios::trunc);
  if (!f) throw std::runtime_error("cannot open for writing: " + path);
  f << campaign_to_json(result);
  if (!f) throw std::runtime_error("write failed: " + path);
}

}  // namespace generic::resilience
