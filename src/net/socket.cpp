#include "net/socket.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

namespace generic::net {

void Fd::reset() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Fd listen_loopback(std::uint16_t port, std::uint16_t& out_port, int backlog) {
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return Fd();
  int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0)
    return Fd();
  if (::listen(fd.get(), backlog) != 0) return Fd();
  socklen_t len = sizeof(addr);
  if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&addr), &len) != 0)
    return Fd();
  out_port = ntohs(addr.sin_port);
  return fd;
}

Fd connect_loopback(std::uint16_t port) {
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return Fd();
  // Latency over batching: every frame is a full request or response, so
  // Nagle only adds round-trip stalls to the closed loop.
  int one = 1;
  ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  int rc;
  do {
    rc = ::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) return Fd();
  return fd;
}

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  return ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

bool write_all(int fd, const std::uint8_t* data, std::size_t len) {
  std::size_t off = 0;
  while (off < len) {
    const ::ssize_t n = ::write(fd, data + off, len - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

std::ptrdiff_t read_some(int fd, std::uint8_t* data, std::size_t len) {
  for (;;) {
    const ::ssize_t n = ::read(fd, data, len);
    if (n < 0 && errno == EINTR) continue;
    return n;
  }
}

}  // namespace generic::net
