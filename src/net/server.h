// Poll-based loopback TCP ingress for the fleet (docs/fleet.md).
//
// Single-threaded pump over non-blocking sockets: poll_once() accepts new
// connections (up to cfg.max_connections), reads whatever bytes arrived,
// advances each connection's FrameParser and protocol state machine, and
// returns typed events — accepted HELLOs, validated requests, BYEs, and
// closes (orderly or protocol-error). Responses queue into per-connection
// outboxes flushed opportunistically, so the pump never blocks on a slow
// reader.
//
// The server owns the PROTOCOL state machine (handshake sequencing, tenant
// / model / query-range validation — the checks that only need the static
// topology); the fleet layer owns every SERVING decision. Any violation
// sends one kError frame with the typed ProtoError and closes that
// connection; other connections are untouched, and no input can make the
// pump crash or read out of bounds (the ASan/UBSan corpus in
// tests/net/protocol_test.cpp covers the parser; tests/net/server_test.cpp
// covers the pump).
//
// drain() stops accepting, flushes every outbox, and closes what remains —
// the graceful-shutdown half of the connection lifecycle.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <vector>

#include "net/protocol.h"
#include "net/socket.h"

namespace generic::net {

struct ServerConfig {
  std::uint16_t port = 0;          ///< 0: ephemeral, read back via port()
  std::size_t max_connections = 64;
  /// Static fleet topology for protocol validation: tenants 0..n-1 are
  /// valid in HELLO; request model m must be < model_queries.size() and
  /// its query index < model_queries[m]. Also the HELLO_ACK payload.
  std::size_t num_tenants = 1;
  std::vector<std::uint32_t> model_queries;
};

/// One typed event out of the pump.
struct ServerEvent {
  enum class Kind : std::uint8_t {
    kAccept,   ///< connection accepted (awaiting HELLO)
    kHello,    ///< HELLO validated; HELLO_ACK queued. `tenant` set
    kRequest,  ///< request validated against the topology. `req` set
    kBye,      ///< client finished; connection closed after flush
    kClosed,   ///< connection closed; `error` != kNone on a violation
  };
  Kind kind = Kind::kAccept;
  std::uint64_t conn = 0;  ///< server-assigned connection id
  std::uint16_t tenant = 0;
  std::uint16_t client = 0;  ///< declared client ordinal (kHello)
  WireRequest req;
  ProtoError error = ProtoError::kNone;
};

struct ServerStats {
  std::uint64_t accepted = 0;
  std::uint64_t rejected_at_limit = 0;  ///< accepted then closed: at capacity
  std::uint64_t closed = 0;
  std::uint64_t frames = 0;           ///< complete frames parsed
  std::uint64_t requests = 0;         ///< validated kRequest frames
  std::uint64_t protocol_errors = 0;  ///< connections closed on a violation
  std::size_t peak_connections = 0;
};

class Server {
 public:
  /// Binds and listens on 127.0.0.1 immediately; listening() reports
  /// whether that succeeded (no exceptions — callers print and exit).
  explicit Server(const ServerConfig& cfg);

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  bool listening() const { return listen_.valid(); }
  std::uint16_t port() const { return port_; }

  /// One pump iteration: wait up to timeout_ms for socket readiness, then
  /// accept / read / parse / flush. Returns every event that surfaced.
  std::vector<ServerEvent> poll_once(int timeout_ms);

  /// Pump until `conn` yields an event or closes, or timeout_ms elapses.
  /// Events from OTHER connections surfaced on the way are returned too
  /// (callers must process all of them). Empty return = timeout.
  std::vector<ServerEvent> wait_conn(std::uint64_t conn, int timeout_ms);

  /// Queue a response frame on `conn` and flush opportunistically. False
  /// if the connection is already gone.
  bool send_response(std::uint64_t conn, const WireResponse& r);

  /// Graceful shutdown: stop accepting, flush every outbox (blocking,
  /// bounded by timeout_ms), close everything. Returns pending closes.
  std::vector<ServerEvent> drain(int timeout_ms);

  /// Forcibly close `conn` with a typed error frame — for violations only
  /// a layer above the protocol state machine can see (e.g. a duplicate
  /// client identity). No-op if the connection is already gone.
  void kick(std::uint64_t conn, ProtoError e);

  std::size_t open_connections() const { return conns_.size(); }
  const ServerStats& stats() const { return stats_; }

  /// Virtual timestamp stamped on kNet* rtrace events. The socket driver
  /// advances this as its virtual clock moves; purely observational.
  void set_virtual_time(std::uint64_t vt) { trace_vt_ = vt; }

 private:
  struct Conn {
    Fd fd;
    FrameParser parser;
    std::vector<std::uint8_t> outbox;  ///< unsent bytes
    enum class State : std::uint8_t { kAwaitHello, kActive } state =
        State::kAwaitHello;
    std::uint16_t tenant = 0;
    std::uint16_t client = 0;
    std::uint64_t frames = 0;
  };

  void accept_ready(std::vector<ServerEvent>& events);
  void read_ready(std::uint64_t id, Conn& c, std::vector<ServerEvent>& events);
  /// Run the state machine over every completed frame. True = keep open.
  bool process_frames(std::uint64_t id, Conn& c,
                      std::vector<ServerEvent>& events);
  void error_close(std::uint64_t id, Conn& c, ProtoError e,
                   std::vector<ServerEvent>& events);
  void close_conn(std::uint64_t id, ProtoError e,
                  std::vector<ServerEvent>& events);
  bool flush_outbox(Conn& c);

  ServerConfig cfg_;
  Fd listen_;
  std::uint16_t port_ = 0;
  bool accepting_ = true;
  std::uint64_t next_conn_ = 0;
  std::map<std::uint64_t, Conn> conns_;
  ServerStats stats_;
  std::uint64_t trace_vt_ = 0;
};

}  // namespace generic::net
