// Thin POSIX socket wrappers for the fleet ingress: an RAII fd plus the
// handful of loopback TCP helpers the server and the closed-loop client
// need. Everything here is portable poll()-era POSIX — no epoll/kqueue
// dependency — because the ingress pump (server.h) multiplexes a bounded
// connection count where poll() is ample and runs everywhere the CI does.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>

namespace generic::net {

/// Owning file descriptor. Move-only; closes on destruction.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { reset(); }

  Fd(Fd&& o) noexcept : fd_(o.fd_) { o.fd_ = -1; }
  Fd& operator=(Fd&& o) noexcept {
    if (this != &o) {
      reset();
      fd_ = o.fd_;
      o.fd_ = -1;
    }
    return *this;
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  void reset();
  int release() { return std::exchange(fd_, -1); }

 private:
  int fd_ = -1;
};

/// Listen on 127.0.0.1:`port` (port 0 = ephemeral). Returns an invalid Fd
/// on failure. `out_port` receives the bound port.
Fd listen_loopback(std::uint16_t port, std::uint16_t& out_port,
                   int backlog = 64);

/// Blocking connect to 127.0.0.1:`port`. Invalid Fd on failure.
Fd connect_loopback(std::uint16_t port);

/// Set O_NONBLOCK. Returns false on fcntl failure.
bool set_nonblocking(int fd);

/// write() the whole buffer on a BLOCKING socket, retrying short writes
/// and EINTR. Returns false on any hard error.
bool write_all(int fd, const std::uint8_t* data, std::size_t len);

/// read() up to `len` bytes on a BLOCKING socket, retrying EINTR. Returns
/// bytes read (0 on orderly peer close), or -1 on hard error.
std::ptrdiff_t read_some(int fd, std::uint8_t* data, std::size_t len);

}  // namespace generic::net
