#include "net/server.h"

#include <errno.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>

#include "obs/rtrace.h"

namespace generic::net {

namespace rtrace = obs::rtrace;

Server::Server(const ServerConfig& cfg) : cfg_(cfg) {
  listen_ = listen_loopback(cfg_.port, port_);
  if (listen_.valid()) set_nonblocking(listen_.get());
}

void Server::accept_ready(std::vector<ServerEvent>& events) {
  for (;;) {
    const int fd = ::accept(listen_.get(), nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // EAGAIN / EWOULDBLOCK: drained the backlog
    }
    if (!accepting_ || conns_.size() >= cfg_.max_connections) {
      ::close(fd);
      ++stats_.rejected_at_limit;
      continue;
    }
    set_nonblocking(fd);
    const std::uint64_t id = next_conn_++;
    Conn& c = conns_[id];
    c.fd = Fd(fd);
    ++stats_.accepted;
    stats_.peak_connections = std::max(stats_.peak_connections, conns_.size());
    rtrace::record(rtrace::EventKind::kNetAccept, trace_vt_, id);
    events.push_back({ServerEvent::Kind::kAccept, id, 0, 0, {}, ProtoError::kNone});
  }
}

bool Server::flush_outbox(Conn& c) {
  while (!c.outbox.empty()) {
    const ::ssize_t n =
        ::write(c.fd.get(), c.outbox.data(), c.outbox.size());
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;  // retry later
      return false;  // peer gone
    }
    c.outbox.erase(c.outbox.begin(), c.outbox.begin() + n);
  }
  return true;
}

void Server::close_conn(std::uint64_t id, ProtoError e,
                        std::vector<ServerEvent>& events) {
  auto it = conns_.find(id);
  if (it == conns_.end()) return;
  rtrace::record(rtrace::EventKind::kNetClose, trace_vt_, id, 0, 0,
                 static_cast<std::int64_t>(it->second.frames));
  conns_.erase(it);
  ++stats_.closed;
  events.push_back({ServerEvent::Kind::kClosed, id, 0, 0, {}, e});
}

void Server::error_close(std::uint64_t id, Conn& c, ProtoError e,
                         std::vector<ServerEvent>& events) {
  ++stats_.protocol_errors;
  rtrace::record(rtrace::EventKind::kNetError, trace_vt_, id, 0, 0,
                 static_cast<std::int64_t>(e));
  // Best-effort: the error frame rides whatever the outbox can still take.
  encode_error(e, c.outbox);
  flush_outbox(c);
  close_conn(id, e, events);
}

bool Server::process_frames(std::uint64_t id, Conn& c,
                            std::vector<ServerEvent>& events) {
  while (auto f = c.parser.next()) {
    ++c.frames;
    ++stats_.frames;
    switch (c.state) {
      case Conn::State::kAwaitHello: {
        if (f->kind != FrameKind::kHello) {
          error_close(id, c, ProtoError::kBadSequence, events);
          return false;
        }
        Hello h;
        if (ProtoError e = decode_hello(*f, h); e != ProtoError::kNone) {
          error_close(id, c, e, events);
          return false;
        }
        if (h.tenant >= cfg_.num_tenants) {
          error_close(id, c, ProtoError::kUnknownTenant, events);
          return false;
        }
        c.tenant = h.tenant;
        c.client = h.client;
        c.state = Conn::State::kActive;
        HelloAck ack;
        ack.model_queries = cfg_.model_queries;
        encode_hello_ack(ack, c.outbox);
        if (!flush_outbox(c)) {
          close_conn(id, ProtoError::kNone, events);
          return false;
        }
        events.push_back({ServerEvent::Kind::kHello, id, h.tenant,
                          h.client, {}, ProtoError::kNone});
        break;
      }
      case Conn::State::kActive: {
        if (f->kind == FrameKind::kBye) {
          events.push_back({ServerEvent::Kind::kBye, id, c.tenant,
                            c.client, {}, ProtoError::kNone});
          flush_outbox(c);
          close_conn(id, ProtoError::kNone, events);
          return false;
        }
        if (f->kind != FrameKind::kRequest) {
          error_close(id, c, ProtoError::kBadSequence, events);
          return false;
        }
        WireRequest r;
        if (ProtoError e = decode_request(*f, r); e != ProtoError::kNone) {
          error_close(id, c, e, events);
          return false;
        }
        if (r.model >= cfg_.model_queries.size()) {
          error_close(id, c, ProtoError::kUnknownModel, events);
          return false;
        }
        if (r.query >= cfg_.model_queries[r.model]) {
          error_close(id, c, ProtoError::kBadPayload, events);
          return false;
        }
        ++stats_.requests;
        events.push_back({ServerEvent::Kind::kRequest, id, c.tenant,
                          c.client, r, ProtoError::kNone});
        break;
      }
    }
  }
  if (c.parser.failed()) {
    error_close(id, c, c.parser.error(), events);
    return false;
  }
  return true;
}

void Server::read_ready(std::uint64_t id, Conn& c,
                        std::vector<ServerEvent>& events) {
  std::uint8_t buf[4096];
  for (;;) {
    const ::ssize_t n = ::read(c.fd.get(), buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      close_conn(id, ProtoError::kNone, events);
      return;
    }
    if (n == 0) {  // orderly peer close (without BYE)
      close_conn(id, ProtoError::kNone, events);
      return;
    }
    c.parser.feed(buf, static_cast<std::size_t>(n));
    if (!process_frames(id, c, events)) return;
    if (n < static_cast<::ssize_t>(sizeof(buf))) break;
  }
}

std::vector<ServerEvent> Server::poll_once(int timeout_ms) {
  std::vector<ServerEvent> events;
  std::vector<::pollfd> fds;
  std::vector<std::uint64_t> ids;  // ids[i] pairs with fds[i] (after listen)
  if (accepting_ && listen_.valid())
    fds.push_back({listen_.get(), POLLIN, 0});
  const std::size_t first_conn = fds.size();
  for (auto& [id, c] : conns_) {
    short ev = POLLIN;
    if (!c.outbox.empty()) ev |= POLLOUT;
    fds.push_back({c.fd.get(), ev, 0});
    ids.push_back(id);
  }
  if (fds.empty()) return events;
  int rc;
  do {
    rc = ::poll(fds.data(), fds.size(), timeout_ms);
  } while (rc < 0 && errno == EINTR);
  if (rc <= 0) return events;

  if (first_conn == 1 && (fds[0].revents & POLLIN) != 0) accept_ready(events);
  for (std::size_t i = first_conn; i < fds.size(); ++i) {
    const std::uint64_t id = ids[i - first_conn];
    auto it = conns_.find(id);
    if (it == conns_.end()) continue;  // closed earlier this iteration
    Conn& c = it->second;
    if ((fds[i].revents & POLLOUT) != 0) {
      if (!flush_outbox(c)) {
        close_conn(id, ProtoError::kNone, events);
        continue;
      }
    }
    if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) != 0)
      read_ready(id, c, events);
  }
  return events;
}

std::vector<ServerEvent> Server::wait_conn(std::uint64_t conn, int timeout_ms) {
  std::vector<ServerEvent> events;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  for (;;) {
    if (conns_.find(conn) == conns_.end()) return events;  // already gone
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now());
    if (left.count() <= 0) return events;
    auto batch = poll_once(static_cast<int>(left.count()));
    bool hit = false;
    for (auto& ev : batch) hit = hit || ev.conn == conn;
    events.insert(events.end(), batch.begin(), batch.end());
    if (hit) return events;
  }
}

bool Server::send_response(std::uint64_t conn, const WireResponse& r) {
  auto it = conns_.find(conn);
  if (it == conns_.end()) return false;
  encode_response(r, it->second.outbox);
  return flush_outbox(it->second);
}

void Server::kick(std::uint64_t conn, ProtoError e) {
  auto it = conns_.find(conn);
  if (it == conns_.end()) return;
  std::vector<ServerEvent> discard;
  error_close(conn, it->second, e, discard);
}

std::vector<ServerEvent> Server::drain(int timeout_ms) {
  std::vector<ServerEvent> events;
  accepting_ = false;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (!conns_.empty() && std::chrono::steady_clock::now() < deadline) {
    bool pending = false;
    for (auto& [id, c] : conns_) pending = pending || !c.outbox.empty();
    if (!pending) break;
    auto batch = poll_once(10);
    events.insert(events.end(), batch.begin(), batch.end());
  }
  // Close whatever is left (flushed or not — the deadline bounds us).
  while (!conns_.empty())
    close_conn(conns_.begin()->first, ProtoError::kNone, events);
  listen_.reset();
  return events;
}

}  // namespace generic::net
