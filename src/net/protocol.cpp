#include "net/protocol.h"

#include <cstring>

namespace generic::net {

namespace {

// Little-endian scalar append/read. memcpy keeps every access aligned and
// UB-free regardless of buffer offsets.

template <typename T>
void put(std::vector<std::uint8_t>& out, T v) {
  std::uint8_t bytes[sizeof(T)];
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    bytes[i] = static_cast<std::uint8_t>(v & 0xFF);
    if constexpr (sizeof(T) > 1) v = static_cast<T>(v >> 8);
  }
  out.insert(out.end(), bytes, bytes + sizeof(T));
}

template <typename T>
T get(const std::uint8_t* p) {
  T v = 0;
  for (std::size_t i = sizeof(T); i-- > 0;)
    v = static_cast<T>((v << (sizeof(T) > 1 ? 8 : 0)) | p[i]);
  return v;
}

/// Bounds-checked sequential reader over a frame body.
class Reader {
 public:
  Reader(const std::vector<std::uint8_t>& body) : p_(body.data()), n_(body.size()) {}

  template <typename T>
  bool read(T& out) {
    if (n_ - off_ < sizeof(T)) return false;
    out = get<T>(p_ + off_);
    off_ += sizeof(T);
    return true;
  }

  bool done() const { return off_ == n_; }

 private:
  const std::uint8_t* p_;
  std::size_t n_;
  std::size_t off_ = 0;
};

/// Frame header writer: reserves the length prefix, returns the patch
/// offset; seal() back-fills the length once the body is complete.
std::size_t open_frame(std::vector<std::uint8_t>& out, FrameKind kind) {
  const std::size_t at = out.size();
  put<std::uint32_t>(out, 0);  // patched by seal_frame
  out.push_back(static_cast<std::uint8_t>(kind));
  return at;
}

void seal_frame(std::vector<std::uint8_t>& out, std::size_t at) {
  const std::uint32_t len = static_cast<std::uint32_t>(out.size() - at - 4);
  out[at + 0] = static_cast<std::uint8_t>(len & 0xFF);
  out[at + 1] = static_cast<std::uint8_t>((len >> 8) & 0xFF);
  out[at + 2] = static_cast<std::uint8_t>((len >> 16) & 0xFF);
  out[at + 3] = static_cast<std::uint8_t>((len >> 24) & 0xFF);
}

}  // namespace

std::string_view proto_error_name(ProtoError e) {
  switch (e) {
    case ProtoError::kNone: return "none";
    case ProtoError::kZeroLength: return "zero_length";
    case ProtoError::kOversized: return "oversized";
    case ProtoError::kUnknownKind: return "unknown_kind";
    case ProtoError::kShortBody: return "short_body";
    case ProtoError::kTrailingBytes: return "trailing_bytes";
    case ProtoError::kBadVersion: return "bad_version";
    case ProtoError::kBadSequence: return "bad_sequence";
    case ProtoError::kUnknownModel: return "unknown_model";
    case ProtoError::kUnknownTenant: return "unknown_tenant";
    case ProtoError::kBadPayload: return "bad_payload";
  }
  return "unknown";
}

// ---- Encoding -------------------------------------------------------------

void encode_hello(const Hello& h, std::vector<std::uint8_t>& out) {
  const std::size_t at = open_frame(out, FrameKind::kHello);
  put<std::uint16_t>(out, h.version);
  put<std::uint16_t>(out, h.tenant);
  put<std::uint16_t>(out, h.client);
  seal_frame(out, at);
}

void encode_hello_ack(const HelloAck& a, std::vector<std::uint8_t>& out) {
  const std::size_t at = open_frame(out, FrameKind::kHelloAck);
  put<std::uint16_t>(out, static_cast<std::uint16_t>(a.model_queries.size()));
  for (std::uint32_t q : a.model_queries) put<std::uint32_t>(out, q);
  seal_frame(out, at);
}

void encode_request(const WireRequest& r, std::vector<std::uint8_t>& out) {
  const std::size_t at = open_frame(out, FrameKind::kRequest);
  put<std::uint64_t>(out, r.id);
  put<std::uint64_t>(out, r.send_us);
  put<std::uint16_t>(out, r.model);
  put<std::uint8_t>(out, r.priority);
  put<std::uint64_t>(out, r.deadline_rel_us);
  put<std::uint16_t>(out, 4);  // payload v1: one u32 query index
  put<std::uint32_t>(out, r.query);
  seal_frame(out, at);
}

void encode_response(const WireResponse& r, std::vector<std::uint8_t>& out) {
  const std::size_t at = open_frame(out, FrameKind::kResponse);
  put<std::uint64_t>(out, r.id);
  put<std::uint8_t>(out, r.status);
  put<std::uint32_t>(out, static_cast<std::uint32_t>(r.predicted));
  put<std::uint64_t>(out, static_cast<std::uint64_t>(r.margin_micro));
  put<std::uint32_t>(out, r.dims_used);
  put<std::uint32_t>(out, r.attempts);
  put<std::uint64_t>(out, r.finish_us);
  put<std::uint64_t>(out, r.latency_us);
  put<std::uint64_t>(out, r.version);
  put<std::uint32_t>(out, r.rung);
  seal_frame(out, at);
}

void encode_bye(std::vector<std::uint8_t>& out) {
  const std::size_t at = open_frame(out, FrameKind::kBye);
  seal_frame(out, at);
}

void encode_error(ProtoError e, std::vector<std::uint8_t>& out) {
  const std::size_t at = open_frame(out, FrameKind::kError);
  put<std::uint8_t>(out, static_cast<std::uint8_t>(e));
  seal_frame(out, at);
}

// ---- Decoding -------------------------------------------------------------

ProtoError decode_hello(const Frame& f, Hello& out) {
  Reader r(f.body);
  if (!r.read(out.version) || !r.read(out.tenant) || !r.read(out.client))
    return ProtoError::kShortBody;
  if (!r.done()) return ProtoError::kTrailingBytes;
  if (out.version != kProtoVersion) return ProtoError::kBadVersion;
  return ProtoError::kNone;
}

ProtoError decode_hello_ack(const Frame& f, HelloAck& out) {
  Reader r(f.body);
  std::uint16_t n = 0;
  if (!r.read(n)) return ProtoError::kShortBody;
  out.model_queries.clear();
  out.model_queries.reserve(n);
  for (std::uint16_t i = 0; i < n; ++i) {
    std::uint32_t q = 0;
    if (!r.read(q)) return ProtoError::kShortBody;
    out.model_queries.push_back(q);
  }
  if (!r.done()) return ProtoError::kTrailingBytes;
  return ProtoError::kNone;
}

ProtoError decode_request(const Frame& f, WireRequest& out) {
  Reader r(f.body);
  std::uint16_t payload_len = 0;
  if (!r.read(out.id) || !r.read(out.send_us) || !r.read(out.model) ||
      !r.read(out.priority) || !r.read(out.deadline_rel_us) ||
      !r.read(payload_len))
    return ProtoError::kShortBody;
  // Payload v1: exactly one u32 query index. A zero-length payload is a
  // typed error (the fuzz corpus pins this), not a crash.
  if (payload_len != 4) return ProtoError::kBadPayload;
  if (!r.read(out.query)) return ProtoError::kShortBody;
  if (!r.done()) return ProtoError::kTrailingBytes;
  return ProtoError::kNone;
}

ProtoError decode_response(const Frame& f, WireResponse& out) {
  Reader r(f.body);
  std::uint32_t predicted = 0;
  std::uint64_t margin = 0;
  if (!r.read(out.id) || !r.read(out.status) || !r.read(predicted) ||
      !r.read(margin) || !r.read(out.dims_used) || !r.read(out.attempts) ||
      !r.read(out.finish_us) || !r.read(out.latency_us) ||
      !r.read(out.version) || !r.read(out.rung))
    return ProtoError::kShortBody;
  out.predicted = static_cast<std::int32_t>(predicted);
  out.margin_micro = static_cast<std::int64_t>(margin);
  if (!r.done()) return ProtoError::kTrailingBytes;
  return ProtoError::kNone;
}

ProtoError decode_error(const Frame& f, ProtoError& out) {
  Reader r(f.body);
  std::uint8_t code = 0;
  if (!r.read(code)) return ProtoError::kShortBody;
  if (!r.done()) return ProtoError::kTrailingBytes;
  out = static_cast<ProtoError>(code);
  return ProtoError::kNone;
}

// ---- FrameParser ----------------------------------------------------------

void FrameParser::feed(const std::uint8_t* data, std::size_t len) {
  if (failed()) return;
  // Compact lazily: drop the consumed prefix once it dominates the buffer
  // so long-lived connections never grow the buffer unbounded.
  if (consumed_ > 4096 && consumed_ * 2 >= buf_.size()) {
    buf_.erase(buf_.begin(),
               buf_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  buf_.insert(buf_.end(), data, data + len);
}

std::optional<Frame> FrameParser::next() {
  if (failed()) return std::nullopt;
  const std::size_t avail = buf_.size() - consumed_;
  if (avail < 4) return std::nullopt;
  const std::uint32_t len = get<std::uint32_t>(buf_.data() + consumed_);
  if (len == 0) {
    error_ = ProtoError::kZeroLength;
    return std::nullopt;
  }
  if (len > kMaxFrameLen) {
    error_ = ProtoError::kOversized;
    return std::nullopt;
  }
  if (avail < 4 + static_cast<std::size_t>(len)) return std::nullopt;
  const std::uint8_t kind = buf_[consumed_ + 4];
  if (kind < static_cast<std::uint8_t>(FrameKind::kHello) ||
      kind > static_cast<std::uint8_t>(FrameKind::kError)) {
    error_ = ProtoError::kUnknownKind;
    return std::nullopt;
  }
  Frame f;
  f.kind = static_cast<FrameKind>(kind);
  f.body.assign(buf_.begin() + static_cast<std::ptrdiff_t>(consumed_ + 5),
                buf_.begin() + static_cast<std::ptrdiff_t>(consumed_ + 4 + len));
  consumed_ += 4 + len;
  return f;
}

}  // namespace generic::net
