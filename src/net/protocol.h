// Length-prefixed framed wire protocol of the fleet ingress (docs/fleet.md).
//
// Every frame on the wire is
//
//     u32 LE length | u8 kind | body[length - 1]
//
// where `length` counts the kind byte plus the body, so the smallest legal
// frame is length == 1 (a bare kind). All multi-byte integers are little
// endian. The protocol is strictly client-initiated request/response over
// one TCP connection:
//
//     client                         server
//       | -- kHello (tenant) ---------> |
//       | <------------ kHelloAck ----- |   per-model query counts
//       | -- kRequest ----------------> |
//       | <------------ kResponse ----- |   (or kError, closing)
//       |        ... repeat ...         |
//       | -- kBye --------------------> |
//       |        (server closes)        |
//
// Parsing is incremental (FrameParser) and total: every possible byte
// stream either yields well-formed frames or lands in exactly one typed
// ProtoError, after which the parser is sticky-failed and the connection
// must close. No input may invoke UB — the parser is exercised under
// ASan/UBSan by the fuzz-ish corpus in tests/net/protocol_test.cpp.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace generic::net {

/// Frame kinds. Values are wire bytes — never renumber; append only.
enum class FrameKind : std::uint8_t {
  kHello = 1,     ///< client -> server: tenant id, protocol version
  kHelloAck = 2,  ///< server -> client: accepted; per-model query counts
  kRequest = 3,   ///< client -> server: one inference request
  kResponse = 4,  ///< server -> client: terminal outcome of one request
  kBye = 5,       ///< client -> server: done; drain and close
  kError = 6,     ///< server -> client: typed protocol error, closing
};

/// Typed protocol violations. Each maps to exactly one detection site in
/// FrameParser / the body decoders; the numeric value is the wire payload
/// of a kError frame and the rtrace kNetError detail.
enum class ProtoError : std::uint8_t {
  kNone = 0,
  kZeroLength = 1,     ///< length prefix == 0 (frames carry >= the kind byte)
  kOversized = 2,      ///< length prefix > kMaxFrameLen
  kUnknownKind = 3,    ///< kind byte outside FrameKind
  kShortBody = 4,      ///< body too small for the kind's fixed fields
  kTrailingBytes = 5,  ///< body longer than the kind's encoding
  kBadVersion = 6,     ///< HELLO with an unsupported protocol version
  kBadSequence = 7,    ///< frame kind illegal in the connection state
  kUnknownModel = 8,   ///< request names a model index out of range
  kUnknownTenant = 9,  ///< hello/request names a tenant out of range
  kBadPayload = 10,    ///< request payload fails its own invariants
};

/// Stable short name ("zero_length", ...) used in reports and logs.
std::string_view proto_error_name(ProtoError e);

/// Hard frame bound: a length prefix above this is kOversized — the server
/// never buffers unbounded input on one connection.
inline constexpr std::uint32_t kMaxFrameLen = 64 * 1024;

/// Protocol version spoken by this build (HELLO field).
inline constexpr std::uint16_t kProtoVersion = 1;

/// One parsed frame: the kind byte plus a view-free copy of the body.
struct Frame {
  FrameKind kind = FrameKind::kError;
  std::vector<std::uint8_t> body;
};

// ---- Typed frame bodies ---------------------------------------------------

/// kHello body: u16 version | u16 tenant | u16 client.
/// `client` is the closed-loop client's ordinal within its tenant — the
/// deterministic identity the fleet coordinator orders ties by, so the
/// socket path replays the simulated schedule regardless of accept order.
struct Hello {
  std::uint16_t version = kProtoVersion;
  std::uint16_t tenant = 0;
  std::uint16_t client = 0;
};

/// kHelloAck body: u16 num_models | num_models x u32 query count. The
/// client uses the counts to build valid query indices without sharing the
/// dataset out of band.
struct HelloAck {
  std::vector<std::uint32_t> model_queries;
};

/// kRequest body:
///   u64 id | u64 send_us | u16 model | u8 priority | u64 deadline_rel_us |
///   u16 payload_len | payload
/// Payload v1 is a u32 query index into the named model's query set (so
/// payload_len is 4); the length field keeps the frame self-describing for
/// future feature payloads. `send_us` is the client's VIRTUAL send time —
/// clients own the virtual clock of their own trace, which is what lets
/// the socket path replay the simulated schedule exactly (docs/fleet.md).
/// `deadline_rel_us` is relative to send_us.
struct WireRequest {
  std::uint64_t id = 0;
  std::uint64_t send_us = 0;
  std::uint16_t model = 0;
  std::uint8_t priority = 0;
  std::uint64_t deadline_rel_us = 0;
  std::uint32_t query = 0;
};

/// kResponse body:
///   u64 id | u8 status | i32 predicted | i64 margin_micro | u32 dims_used |
///   u32 attempts | u64 finish_us | u64 latency_us | u64 version | u32 rung
/// `status` is serve::Outcome (0..5) extended with the fleet's admission
/// verdicts: 6 = quota_rejected, 7 = priority_shed. `margin_micro` is the
/// winning-class margin (confidence) in fixed-point millionths.
struct WireResponse {
  std::uint64_t id = 0;
  std::uint8_t status = 0;
  std::int32_t predicted = -1;
  std::int64_t margin_micro = 0;
  std::uint32_t dims_used = 0;
  std::uint32_t attempts = 0;
  std::uint64_t finish_us = 0;
  std::uint64_t latency_us = 0;
  std::uint64_t version = 0;
  std::uint32_t rung = 0;
};

inline constexpr std::uint8_t kStatusQuotaRejected = 6;
inline constexpr std::uint8_t kStatusPriorityShed = 7;

// ---- Encoding -------------------------------------------------------------
//
// Each encode_* appends one complete frame (length prefix included) to
// `out`, so a socket writer can batch frames into one buffer.

void encode_hello(const Hello& h, std::vector<std::uint8_t>& out);
void encode_hello_ack(const HelloAck& a, std::vector<std::uint8_t>& out);
void encode_request(const WireRequest& r, std::vector<std::uint8_t>& out);
void encode_response(const WireResponse& r, std::vector<std::uint8_t>& out);
void encode_bye(std::vector<std::uint8_t>& out);
void encode_error(ProtoError e, std::vector<std::uint8_t>& out);

// ---- Decoding -------------------------------------------------------------
//
// Body decoders take a parsed Frame and either fill the typed struct or
// return the ProtoError that rejects it (kShortBody / kTrailingBytes /
// kBadVersion / kBadPayload). They never read out of bounds.

ProtoError decode_hello(const Frame& f, Hello& out);
ProtoError decode_hello_ack(const Frame& f, HelloAck& out);
ProtoError decode_request(const Frame& f, WireRequest& out);
ProtoError decode_response(const Frame& f, WireResponse& out);
ProtoError decode_error(const Frame& f, ProtoError& out);

/// Incremental frame assembler. Feed bytes as they arrive; next() yields
/// completed frames in order. The first violation (zero/oversized length,
/// unknown kind) latches error() and next() returns nothing forever after
/// — the connection owner must send kError and close.
class FrameParser {
 public:
  /// Append raw bytes from the wire. Safe to call after an error (bytes
  /// are discarded).
  void feed(const std::uint8_t* data, std::size_t len);

  /// Pop the next completed frame, if any.
  std::optional<Frame> next();

  ProtoError error() const { return error_; }
  bool failed() const { return error_ != ProtoError::kNone; }

  /// Bytes buffered but not yet consumed as a frame (diagnostics).
  std::size_t buffered() const { return buf_.size() - consumed_; }

 private:
  std::vector<std::uint8_t> buf_;
  std::size_t consumed_ = 0;  ///< prefix of buf_ already turned into frames
  ProtoError error_ = ProtoError::kNone;
};

}  // namespace generic::net
