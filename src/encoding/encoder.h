// Encoder interface shared by all five HDC encoding schemes of the paper
// (§2.2 baselines + §3.1 GENERIC). An encoder maps a raw feature vector to
// a bundled hypervector (IntHV); the classifier, clusterer and the ASIC
// model are all encoder-agnostic.
//
// All encoders except random projection quantize each feature into one of
// `levels` bins (Quantizer) and look the bin up in a LevelMemory; they
// differ only in how positional information is bound:
//   rp          -- linear random projection of quantized values, no levels
//   level-id    -- per-feature random id XOR level          (Fig. 2(c))
//   permutation -- level permuted by the feature's index    (Fig. 2(b))
//   ngram       -- XOR of permuted levels over sliding windows, no ids
//   generic     -- ngram windows + per-window id binding    (Fig. 2(d), Eq. 1)
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/quantizer.h"
#include "common/thread_pool.h"
#include "hdc/hypervector.h"

namespace generic::enc {

struct EncoderConfig {
  std::size_t dims = 4096;    ///< hypervector dimensionality D_hv
  std::size_t levels = 64;    ///< quantization bins == level memory depth
  std::size_t window = 3;     ///< window length n (ngram / generic)
  bool use_ids = true;        ///< generic: bind window ids; false => ids = {0}
  std::uint64_t seed = 0xD5A22ULL;  ///< item/level memory seed
  /// Rematerialize item/level hypervectors from the seed on every access
  /// instead of storing them (hdc::ItemStorage::kRematerialized): near-zero
  /// memory footprint, extra recompute per encode, bit-identical encodings.
  bool remat = false;
};

class Encoder {
 public:
  explicit Encoder(const EncoderConfig& cfg) : cfg_(cfg) {}
  virtual ~Encoder() = default;

  Encoder(const Encoder&) = delete;
  Encoder& operator=(const Encoder&) = delete;

  /// Fit any input-dependent state (the quantizer's range) on training data.
  virtual void fit(std::span<const std::vector<float>> samples);

  /// Restore a known quantizer range without data (model deserialization,
  /// streaming deployments where the range is specified up front).
  void fit_range(float lo, float hi) {
    quantizer_ = Quantizer(cfg_.levels);
    quantizer_.fit_range(lo, hi);
  }

  /// Encode one raw feature vector into a bundled hypervector.
  virtual hdc::IntHV encode(std::span<const float> sample) const = 0;

  /// Encode a batch, fanning samples out across `pool` in deterministic
  /// index order: out[i] == encode(samples[i]) bit-for-bit regardless of
  /// the pool's lane count (every sample's encoding is independent and
  /// encode() is const). This is the engine's batched ingestion path.
  std::vector<hdc::IntHV> encode_batch(
      std::span<const std::vector<float>> samples, ThreadPool& pool) const;

  /// encode_batch through the process-wide pool (see set_global_threads).
  std::vector<hdc::IntHV> encode_batch(
      std::span<const std::vector<float>> samples) const {
    return encode_batch(samples, global_pool());
  }

  virtual std::string_view name() const = 0;

  /// Bytes of item/level hypervector payload this encoder currently holds.
  /// Near zero with cfg.remat (only seed rows remain); the stored-vs-remat
  /// trade bench/kernels and the remat tests measure.
  virtual std::size_t memory_footprint_bytes() const { return 0; }

  std::size_t dims() const { return cfg_.dims; }
  const EncoderConfig& config() const { return cfg_; }
  const Quantizer& quantizer() const { return quantizer_; }

 protected:
  std::vector<std::uint16_t> quantize(std::span<const float> sample) const {
    return quantizer_.transform(sample);
  }

  EncoderConfig cfg_;
  Quantizer quantizer_{64};
};

/// Encoder kinds understood by make_encoder. kSymbolNgram is a library
/// extension beyond the paper's five: ngram windows over *categorical*
/// item hypervectors (one independent random HV per symbol) instead of
/// distance-preserving levels — the right tool when feature values are
/// symbols (text, DNA) rather than magnitudes.
enum class EncoderKind {
  kRp,
  kLevelId,
  kNgram,
  kPermutation,
  kGeneric,
  kSymbolNgram,
};

std::string_view to_string(EncoderKind kind);

/// Factory covering all schemes evaluated in Table 1.
std::unique_ptr<Encoder> make_encoder(EncoderKind kind,
                                      const EncoderConfig& cfg);

}  // namespace generic::enc
