// Concrete encoder implementations; see encoder.h for the scheme overview.
#pragma once

#include "encoding/encoder.h"
#include "hdc/item_memory.h"

namespace generic::enc {

/// Random projection (Fig. 2(c) of the paper, "RP" column of Table 1):
/// H = sum_i q(x_i) * id_i with bipolar ids. A purely linear map of the
/// quantized features — by design it cannot represent interactions between
/// features, which is why it fails on time-series such as EEG (§3.2).
class RpEncoder final : public Encoder {
 public:
  explicit RpEncoder(const EncoderConfig& cfg);
  hdc::IntHV encode(std::span<const float> sample) const override;
  std::string_view name() const override { return "rp"; }
  std::size_t memory_footprint_bytes() const override;

 private:
  hdc::ItemMemory ids_;
};

/// Level-id encoding: H = sum_i level(x_i) XOR id_i. Non-linear through the
/// level quantization; ids give global position but no local context.
class LevelIdEncoder final : public Encoder {
 public:
  explicit LevelIdEncoder(const EncoderConfig& cfg);
  hdc::IntHV encode(std::span<const float> sample) const override;
  std::string_view name() const override { return "level-id"; }
  std::size_t memory_footprint_bytes() const override;

 private:
  hdc::ItemMemory ids_;
  hdc::LevelMemory levels_;
};

/// Permutation encoding (Fig. 2(b)): H = sum_i rho^i(level(x_i)).
/// Binds position by shift amount; a pattern that moves by one position
/// maps to an unrelated hypervector, so order-free data (LANG) defeats it.
class PermutationEncoder final : public Encoder {
 public:
  explicit PermutationEncoder(const EncoderConfig& cfg);
  hdc::IntHV encode(std::span<const float> sample) const override;
  std::string_view name() const override { return "permute"; }
  std::size_t memory_footprint_bytes() const override;

 private:
  hdc::LevelMemory levels_;
};

/// N-gram encoding [6,14]: H = sum_i XOR_{j<n} rho^j(level(x_{i+j})).
/// Captures local subsequences but discards their global order, so it fails
/// where spatial layout matters (MNIST, ISOLET).
class NgramEncoder final : public Encoder {
 public:
  explicit NgramEncoder(const EncoderConfig& cfg);
  hdc::IntHV encode(std::span<const float> sample) const override;
  std::string_view name() const override { return "ngram"; }
  std::size_t memory_footprint_bytes() const override;

 private:
  hdc::LevelMemory levels_;
};

/// The proposed GENERIC encoding (Eq. 1, Fig. 2(d)):
///   H = sum_i id_i XOR [ XOR_{j<n} rho^j(level(x_{i+j})) ]
/// Sliding windows capture local context; per-window ids (generated from a
/// single rotating seed id, §4.3.1) restore global order. Setting
/// cfg.use_ids = false zeroes the ids, reducing to pure subsequence
/// statistics for order-free applications such as language identification.
class GenericEncoder final : public Encoder {
 public:
  explicit GenericEncoder(const EncoderConfig& cfg);
  hdc::IntHV encode(std::span<const float> sample) const override;
  std::string_view name() const override { return "generic"; }
  std::size_t memory_footprint_bytes() const override;

  /// Degraded encode around corrupted encoder rows, the encoder-side
  /// mirror of predict_masked: any window that reads a level row with
  /// `level_ok[bin] == false` is skipped entirely (its garbage never
  /// enters the accumulator), and `id_ok == false` drops the id binding —
  /// reducing to pure subsequence statistics, exactly the use_ids = false
  /// encoding. The id rotation still advances once per window position so
  /// surviving windows bind the same id_i the clean encode would.
  /// `level_ok` must have one flag per level row
  /// (resilience::EncoderGuard::scan supplies it).
  hdc::IntHV encode_masked(std::span<const float> sample,
                           const std::vector<bool>& level_ok,
                           bool id_ok) const;

  /// The pristine id seed row for this config, regenerated from the seed —
  /// bit-identical to what the constructor produced, independent of any
  /// in-place corruption since. The scrub source for the id memory.
  hdc::BinaryHV materialize_id_seed() const;

  const hdc::SeededItemMemory& id_memory() const { return ids_; }
  const hdc::LevelMemory& level_memory() const { return levels_; }

  /// Mutable memory access for fault-injection studies (resilience::inject
  /// corrupts level rows / the id seed in place).
  hdc::SeededItemMemory& mutable_id_memory() { return ids_; }
  hdc::LevelMemory& mutable_level_memory() { return levels_; }

 private:
  hdc::SeededItemMemory ids_;
  hdc::LevelMemory levels_;
};

/// Categorical n-gram encoding (extension; see EncoderKind::kSymbolNgram):
/// H = sum_i XOR_{j<n} rho^j(item(x_{i+j})) with an independent random
/// item hypervector per quantization bin. Unlike NgramEncoder there is no
/// similarity between adjacent bins, so symbol identity is exact — on
/// symbolic data (LANG, DNA) this recovers the last few accuracy points
/// the level blur costs.
class SymbolNgramEncoder final : public Encoder {
 public:
  explicit SymbolNgramEncoder(const EncoderConfig& cfg);
  hdc::IntHV encode(std::span<const float> sample) const override;
  std::string_view name() const override { return "sym-ngram"; }
  std::size_t memory_footprint_bytes() const override;

 private:
  hdc::ItemMemory items_;
};

}  // namespace generic::enc
