#include "encoding/encoders.h"

#include <stdexcept>

#include "obs/obs.h"

namespace generic::enc {

namespace {

hdc::ItemStorage storage_of(const EncoderConfig& cfg) {
  return cfg.remat ? hdc::ItemStorage::kRematerialized
                   : hdc::ItemStorage::kStored;
}

/// Row of an item memory as a const reference regardless of storage mode:
/// stored rows are referenced in place, rematerialized rows land in
/// `scratch`. The reference is invalidated by the next call with the same
/// scratch — callers copy or consume it before the next lookup.
const hdc::BinaryHV& item_row(const hdc::ItemMemory& mem, std::size_t key,
                              hdc::BinaryHV& scratch) {
  if (mem.storage() == hdc::ItemStorage::kStored) return mem.get(key);
  scratch = mem.materialize(key);
  return scratch;
}

/// Same contract for level memories.
const hdc::BinaryHV& level_row(const hdc::LevelMemory& mem, std::size_t bin,
                               hdc::BinaryHV& scratch) {
  if (mem.storage() == hdc::ItemStorage::kStored) return mem.level(bin);
  scratch = mem.materialize(bin);
  return scratch;
}

}  // namespace

void Encoder::fit(std::span<const std::vector<float>> samples) {
  quantizer_ = Quantizer(cfg_.levels);
  quantizer_.fit(samples);
}

std::vector<hdc::IntHV> Encoder::encode_batch(
    std::span<const std::vector<float>> samples, ThreadPool& pool) const {
  GENERIC_SPAN("encode.batch");
  GENERIC_COUNTER_ADD("encode.samples", samples.size());
  std::vector<hdc::IntHV> out(samples.size());
  pool.parallel_for(samples.size(),
                    [&](std::size_t begin, std::size_t end, std::size_t) {
                      GENERIC_SPAN("encode.chunk");
                      for (std::size_t i = begin; i < end; ++i)
                        out[i] = encode(samples[i]);
                    });
  return out;
}

std::string_view to_string(EncoderKind kind) {
  switch (kind) {
    case EncoderKind::kRp: return "rp";
    case EncoderKind::kLevelId: return "level-id";
    case EncoderKind::kNgram: return "ngram";
    case EncoderKind::kPermutation: return "permute";
    case EncoderKind::kGeneric: return "generic";
    case EncoderKind::kSymbolNgram: return "sym-ngram";
  }
  return "?";
}

std::unique_ptr<Encoder> make_encoder(EncoderKind kind,
                                      const EncoderConfig& cfg) {
  switch (kind) {
    case EncoderKind::kRp: return std::make_unique<RpEncoder>(cfg);
    case EncoderKind::kLevelId: return std::make_unique<LevelIdEncoder>(cfg);
    case EncoderKind::kNgram: return std::make_unique<NgramEncoder>(cfg);
    case EncoderKind::kPermutation:
      return std::make_unique<PermutationEncoder>(cfg);
    case EncoderKind::kGeneric: return std::make_unique<GenericEncoder>(cfg);
    case EncoderKind::kSymbolNgram:
      return std::make_unique<SymbolNgramEncoder>(cfg);
  }
  throw std::invalid_argument("unknown encoder kind");
}

// ---------------------------------------------------------------- RP

RpEncoder::RpEncoder(const EncoderConfig& cfg)
    : Encoder(cfg), ids_(cfg.dims, cfg.seed, storage_of(cfg)) {}

std::size_t RpEncoder::memory_footprint_bytes() const {
  return ids_.footprint_bytes();
}

hdc::IntHV RpEncoder::encode(std::span<const float> sample) const {
  const auto bins = quantize(sample);
  hdc::IntHV acc(cfg_.dims, 0);
  hdc::BinaryHV scratch;
  for (std::size_t i = 0; i < bins.size(); ++i) {
    const hdc::BinaryHV& id = item_row(ids_, i, scratch);
    const auto value = static_cast<std::int32_t>(bins[i]);
    if (value == 0) continue;
    // acc += value * bipolar(id): split into set/unset bits via two passes
    // over the packed words to stay branch-light.
    for (std::size_t w = 0; w < id.num_words(); ++w) {
      std::uint64_t word = id.words()[w];
      const std::size_t base = w * kWordBits;
      const std::size_t n = std::min(kWordBits, cfg_.dims - base);
      for (std::size_t b = 0; b < n; ++b) {
        const std::int32_t s =
            static_cast<std::int32_t>(((word >> b) & 1ULL) << 1) - 1;
        acc[base + b] += value * s;
      }
    }
  }
  return acc;
}

// ---------------------------------------------------------------- level-id

LevelIdEncoder::LevelIdEncoder(const EncoderConfig& cfg)
    : Encoder(cfg),
      ids_(cfg.dims, cfg.seed, storage_of(cfg)),
      levels_(cfg.dims, cfg.levels, cfg.seed ^ 0x11EE1ULL, storage_of(cfg)) {}

std::size_t LevelIdEncoder::memory_footprint_bytes() const {
  return ids_.footprint_bytes() + levels_.footprint_bytes();
}

hdc::IntHV LevelIdEncoder::encode(std::span<const float> sample) const {
  const auto bins = quantize(sample);
  hdc::IntHV acc(cfg_.dims, 0);
  hdc::BinaryHV bound(cfg_.dims);
  for (std::size_t i = 0; i < bins.size(); ++i) {
    bound = level_row(levels_, bins[i], bound);
    ids_.xor_row_into(i, bound);
    bound.accumulate_into(acc);
  }
  return acc;
}

// ---------------------------------------------------------------- permutation

PermutationEncoder::PermutationEncoder(const EncoderConfig& cfg)
    : Encoder(cfg),
      levels_(cfg.dims, cfg.levels, cfg.seed ^ 0x11EE1ULL, storage_of(cfg)) {}

std::size_t PermutationEncoder::memory_footprint_bytes() const {
  return levels_.footprint_bytes();
}

hdc::IntHV PermutationEncoder::encode(std::span<const float> sample) const {
  const auto bins = quantize(sample);
  hdc::IntHV acc(cfg_.dims, 0);
  hdc::BinaryHV scratch;
  for (std::size_t i = 0; i < bins.size(); ++i)
    level_row(levels_, bins[i], scratch).rotated(i).accumulate_into(acc);
  return acc;
}

// ---------------------------------------------------------------- ngram

NgramEncoder::NgramEncoder(const EncoderConfig& cfg)
    : Encoder(cfg),
      levels_(cfg.dims, cfg.levels, cfg.seed ^ 0x11EE1ULL, storage_of(cfg)) {
  if (cfg.window == 0) throw std::invalid_argument("ngram: window == 0");
}

std::size_t NgramEncoder::memory_footprint_bytes() const {
  return levels_.footprint_bytes();
}

hdc::IntHV NgramEncoder::encode(std::span<const float> sample) const {
  const auto bins = quantize(sample);
  const std::size_t n = cfg_.window;
  hdc::IntHV acc(cfg_.dims, 0);
  if (bins.size() < n) return acc;
  hdc::BinaryHV window_hv(cfg_.dims);
  hdc::BinaryHV scratch;
  for (std::size_t i = 0; i + n <= bins.size(); ++i) {
    window_hv = level_row(levels_, bins[i], scratch);
    for (std::size_t j = 1; j < n; ++j)
      window_hv ^= level_row(levels_, bins[i + j], scratch).rotated(j);
    window_hv.accumulate_into(acc);
  }
  return acc;
}

// ---------------------------------------------------------------- generic

GenericEncoder::GenericEncoder(const EncoderConfig& cfg)
    : Encoder(cfg),
      ids_(cfg.dims, cfg.seed ^ 0x6E2E21CULL),
      levels_(cfg.dims, cfg.levels, cfg.seed ^ 0x11EE1ULL, storage_of(cfg)) {
  if (cfg.window == 0) throw std::invalid_argument("generic: window == 0");
}

std::size_t GenericEncoder::memory_footprint_bytes() const {
  // The seeded id memory is already the ASIC's compressed form: one row.
  return ids_.footprint_bytes() + levels_.footprint_bytes();
}

hdc::IntHV GenericEncoder::encode(std::span<const float> sample) const {
  const auto bins = quantize(sample);
  const std::size_t n = cfg_.window;
  hdc::IntHV acc(cfg_.dims, 0);
  if (bins.size() < n) return acc;
  hdc::BinaryHV window_hv(cfg_.dims);
  hdc::BinaryHV scratch;
  // id_i is the seed id rotated by i, matching the hardware tmp-register
  // scheme; rotate incrementally instead of re-deriving per window.
  hdc::BinaryHV id = ids_.seed_id();
  for (std::size_t i = 0; i + n <= bins.size(); ++i) {
    window_hv = level_row(levels_, bins[i], scratch);
    for (std::size_t j = 1; j < n; ++j)
      window_hv ^= level_row(levels_, bins[i + j], scratch).rotated(j);
    if (cfg_.use_ids) window_hv ^= id;
    window_hv.accumulate_into(acc);
    if (cfg_.use_ids) id = id.rotated(1);
  }
  return acc;
}

hdc::IntHV GenericEncoder::encode_masked(std::span<const float> sample,
                                         const std::vector<bool>& level_ok,
                                         bool id_ok) const {
  if (level_ok.size() != levels_.num_levels())
    throw std::invalid_argument(
        "encode_masked: level_ok must have one flag per level row");
  const auto bins = quantize(sample);
  const std::size_t n = cfg_.window;
  hdc::IntHV acc(cfg_.dims, 0);
  if (bins.size() < n) return acc;
  hdc::BinaryHV window_hv(cfg_.dims);
  hdc::BinaryHV scratch;
  const bool bind_ids = cfg_.use_ids && id_ok;
  hdc::BinaryHV id = bind_ids ? ids_.seed_id() : hdc::BinaryHV();
  for (std::size_t i = 0; i + n <= bins.size(); ++i) {
    bool ok = true;
    for (std::size_t j = 0; j < n && ok; ++j) ok = level_ok[bins[i + j]];
    if (ok) {
      window_hv = level_row(levels_, bins[i], scratch);
      for (std::size_t j = 1; j < n; ++j)
        window_hv ^= level_row(levels_, bins[i + j], scratch).rotated(j);
      if (bind_ids) window_hv ^= id;
      window_hv.accumulate_into(acc);
    }
    // Skipped or not, id_i must track the window index i.
    if (bind_ids) id = id.rotated(1);
  }
  return acc;
}

hdc::BinaryHV GenericEncoder::materialize_id_seed() const {
  return hdc::SeededItemMemory(cfg_.dims, cfg_.seed ^ 0x6E2E21CULL).seed_id();
}

// ---------------------------------------------------------------- sym-ngram

SymbolNgramEncoder::SymbolNgramEncoder(const EncoderConfig& cfg)
    : Encoder(cfg), items_(cfg.dims, cfg.seed ^ 0x51B01ULL, storage_of(cfg)) {
  if (cfg.window == 0) throw std::invalid_argument("sym-ngram: window == 0");
}

std::size_t SymbolNgramEncoder::memory_footprint_bytes() const {
  return items_.footprint_bytes();
}

hdc::IntHV SymbolNgramEncoder::encode(std::span<const float> sample) const {
  const auto bins = quantize(sample);
  const std::size_t n = cfg_.window;
  hdc::IntHV acc(cfg_.dims, 0);
  if (bins.size() < n) return acc;
  hdc::BinaryHV window_hv(cfg_.dims);
  hdc::BinaryHV scratch;
  for (std::size_t i = 0; i + n <= bins.size(); ++i) {
    window_hv = item_row(items_, bins[i], scratch);
    for (std::size_t j = 1; j < n; ++j)
      window_hv ^= item_row(items_, bins[i + j], scratch).rotated(j);
    window_hv.accumulate_into(acc);
  }
  return acc;
}

}  // namespace generic::enc
