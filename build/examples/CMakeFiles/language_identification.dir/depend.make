# Empty dependencies file for language_identification.
# This may be replaced when dependencies are built.
