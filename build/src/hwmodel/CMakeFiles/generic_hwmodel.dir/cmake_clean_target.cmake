file(REMOVE_RECURSE
  "libgeneric_hwmodel.a"
)
