
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hwmodel/device.cpp" "src/hwmodel/CMakeFiles/generic_hwmodel.dir/device.cpp.o" "gcc" "src/hwmodel/CMakeFiles/generic_hwmodel.dir/device.cpp.o.d"
  "/root/repo/src/hwmodel/workload.cpp" "src/hwmodel/CMakeFiles/generic_hwmodel.dir/workload.cpp.o" "gcc" "src/hwmodel/CMakeFiles/generic_hwmodel.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ml/CMakeFiles/generic_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/generic_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
