# Empty dependencies file for generic_hwmodel.
# This may be replaced when dependencies are built.
