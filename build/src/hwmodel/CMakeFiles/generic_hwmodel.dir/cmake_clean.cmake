file(REMOVE_RECURSE
  "CMakeFiles/generic_hwmodel.dir/device.cpp.o"
  "CMakeFiles/generic_hwmodel.dir/device.cpp.o.d"
  "CMakeFiles/generic_hwmodel.dir/workload.cpp.o"
  "CMakeFiles/generic_hwmodel.dir/workload.cpp.o.d"
  "libgeneric_hwmodel.a"
  "libgeneric_hwmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/generic_hwmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
