# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("hdc")
subdirs("encoding")
subdirs("data")
subdirs("ml")
subdirs("model")
subdirs("hwmodel")
subdirs("arch")
