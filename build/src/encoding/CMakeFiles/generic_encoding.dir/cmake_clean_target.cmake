file(REMOVE_RECURSE
  "libgeneric_encoding.a"
)
