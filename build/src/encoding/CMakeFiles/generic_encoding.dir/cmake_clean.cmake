file(REMOVE_RECURSE
  "CMakeFiles/generic_encoding.dir/encoders.cpp.o"
  "CMakeFiles/generic_encoding.dir/encoders.cpp.o.d"
  "libgeneric_encoding.a"
  "libgeneric_encoding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/generic_encoding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
