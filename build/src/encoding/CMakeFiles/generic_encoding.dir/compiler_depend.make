# Empty compiler generated dependencies file for generic_encoding.
# This may be replaced when dependencies are built.
