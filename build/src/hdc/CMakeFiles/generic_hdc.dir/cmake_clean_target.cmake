file(REMOVE_RECURSE
  "libgeneric_hdc.a"
)
