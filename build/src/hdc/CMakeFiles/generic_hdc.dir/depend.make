# Empty dependencies file for generic_hdc.
# This may be replaced when dependencies are built.
