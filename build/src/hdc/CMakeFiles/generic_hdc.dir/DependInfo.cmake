
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hdc/hypervector.cpp" "src/hdc/CMakeFiles/generic_hdc.dir/hypervector.cpp.o" "gcc" "src/hdc/CMakeFiles/generic_hdc.dir/hypervector.cpp.o.d"
  "/root/repo/src/hdc/item_memory.cpp" "src/hdc/CMakeFiles/generic_hdc.dir/item_memory.cpp.o" "gcc" "src/hdc/CMakeFiles/generic_hdc.dir/item_memory.cpp.o.d"
  "/root/repo/src/hdc/ops.cpp" "src/hdc/CMakeFiles/generic_hdc.dir/ops.cpp.o" "gcc" "src/hdc/CMakeFiles/generic_hdc.dir/ops.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/generic_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
