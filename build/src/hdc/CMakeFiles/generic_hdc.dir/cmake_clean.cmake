file(REMOVE_RECURSE
  "CMakeFiles/generic_hdc.dir/hypervector.cpp.o"
  "CMakeFiles/generic_hdc.dir/hypervector.cpp.o.d"
  "CMakeFiles/generic_hdc.dir/item_memory.cpp.o"
  "CMakeFiles/generic_hdc.dir/item_memory.cpp.o.d"
  "CMakeFiles/generic_hdc.dir/ops.cpp.o"
  "CMakeFiles/generic_hdc.dir/ops.cpp.o.d"
  "libgeneric_hdc.a"
  "libgeneric_hdc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/generic_hdc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
