# Empty dependencies file for generic_ml.
# This may be replaced when dependencies are built.
