file(REMOVE_RECURSE
  "CMakeFiles/generic_ml.dir/classifier.cpp.o"
  "CMakeFiles/generic_ml.dir/classifier.cpp.o.d"
  "CMakeFiles/generic_ml.dir/kmeans.cpp.o"
  "CMakeFiles/generic_ml.dir/kmeans.cpp.o.d"
  "CMakeFiles/generic_ml.dir/knn.cpp.o"
  "CMakeFiles/generic_ml.dir/knn.cpp.o.d"
  "CMakeFiles/generic_ml.dir/logreg.cpp.o"
  "CMakeFiles/generic_ml.dir/logreg.cpp.o.d"
  "CMakeFiles/generic_ml.dir/metrics.cpp.o"
  "CMakeFiles/generic_ml.dir/metrics.cpp.o.d"
  "CMakeFiles/generic_ml.dir/mlp.cpp.o"
  "CMakeFiles/generic_ml.dir/mlp.cpp.o.d"
  "CMakeFiles/generic_ml.dir/random_forest.cpp.o"
  "CMakeFiles/generic_ml.dir/random_forest.cpp.o.d"
  "CMakeFiles/generic_ml.dir/scaler.cpp.o"
  "CMakeFiles/generic_ml.dir/scaler.cpp.o.d"
  "CMakeFiles/generic_ml.dir/svm.cpp.o"
  "CMakeFiles/generic_ml.dir/svm.cpp.o.d"
  "libgeneric_ml.a"
  "libgeneric_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/generic_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
