
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/classifier.cpp" "src/ml/CMakeFiles/generic_ml.dir/classifier.cpp.o" "gcc" "src/ml/CMakeFiles/generic_ml.dir/classifier.cpp.o.d"
  "/root/repo/src/ml/kmeans.cpp" "src/ml/CMakeFiles/generic_ml.dir/kmeans.cpp.o" "gcc" "src/ml/CMakeFiles/generic_ml.dir/kmeans.cpp.o.d"
  "/root/repo/src/ml/knn.cpp" "src/ml/CMakeFiles/generic_ml.dir/knn.cpp.o" "gcc" "src/ml/CMakeFiles/generic_ml.dir/knn.cpp.o.d"
  "/root/repo/src/ml/logreg.cpp" "src/ml/CMakeFiles/generic_ml.dir/logreg.cpp.o" "gcc" "src/ml/CMakeFiles/generic_ml.dir/logreg.cpp.o.d"
  "/root/repo/src/ml/metrics.cpp" "src/ml/CMakeFiles/generic_ml.dir/metrics.cpp.o" "gcc" "src/ml/CMakeFiles/generic_ml.dir/metrics.cpp.o.d"
  "/root/repo/src/ml/mlp.cpp" "src/ml/CMakeFiles/generic_ml.dir/mlp.cpp.o" "gcc" "src/ml/CMakeFiles/generic_ml.dir/mlp.cpp.o.d"
  "/root/repo/src/ml/random_forest.cpp" "src/ml/CMakeFiles/generic_ml.dir/random_forest.cpp.o" "gcc" "src/ml/CMakeFiles/generic_ml.dir/random_forest.cpp.o.d"
  "/root/repo/src/ml/scaler.cpp" "src/ml/CMakeFiles/generic_ml.dir/scaler.cpp.o" "gcc" "src/ml/CMakeFiles/generic_ml.dir/scaler.cpp.o.d"
  "/root/repo/src/ml/svm.cpp" "src/ml/CMakeFiles/generic_ml.dir/svm.cpp.o" "gcc" "src/ml/CMakeFiles/generic_ml.dir/svm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/generic_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
