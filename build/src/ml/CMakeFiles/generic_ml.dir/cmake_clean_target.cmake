file(REMOVE_RECURSE
  "libgeneric_ml.a"
)
