file(REMOVE_RECURSE
  "libgeneric_arch.a"
)
