
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/arch/cycle_model.cpp" "src/arch/CMakeFiles/generic_arch.dir/cycle_model.cpp.o" "gcc" "src/arch/CMakeFiles/generic_arch.dir/cycle_model.cpp.o.d"
  "/root/repo/src/arch/energy_model.cpp" "src/arch/CMakeFiles/generic_arch.dir/energy_model.cpp.o" "gcc" "src/arch/CMakeFiles/generic_arch.dir/energy_model.cpp.o.d"
  "/root/repo/src/arch/generic_asic.cpp" "src/arch/CMakeFiles/generic_arch.dir/generic_asic.cpp.o" "gcc" "src/arch/CMakeFiles/generic_arch.dir/generic_asic.cpp.o.d"
  "/root/repo/src/arch/microarch.cpp" "src/arch/CMakeFiles/generic_arch.dir/microarch.cpp.o" "gcc" "src/arch/CMakeFiles/generic_arch.dir/microarch.cpp.o.d"
  "/root/repo/src/arch/power_trace.cpp" "src/arch/CMakeFiles/generic_arch.dir/power_trace.cpp.o" "gcc" "src/arch/CMakeFiles/generic_arch.dir/power_trace.cpp.o.d"
  "/root/repo/src/arch/sram.cpp" "src/arch/CMakeFiles/generic_arch.dir/sram.cpp.o" "gcc" "src/arch/CMakeFiles/generic_arch.dir/sram.cpp.o.d"
  "/root/repo/src/arch/tinyhd.cpp" "src/arch/CMakeFiles/generic_arch.dir/tinyhd.cpp.o" "gcc" "src/arch/CMakeFiles/generic_arch.dir/tinyhd.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/generic_model.dir/DependInfo.cmake"
  "/root/repo/build/src/encoding/CMakeFiles/generic_encoding.dir/DependInfo.cmake"
  "/root/repo/build/src/hdc/CMakeFiles/generic_hdc.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/generic_common.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/generic_data.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
