file(REMOVE_RECURSE
  "CMakeFiles/generic_arch.dir/cycle_model.cpp.o"
  "CMakeFiles/generic_arch.dir/cycle_model.cpp.o.d"
  "CMakeFiles/generic_arch.dir/energy_model.cpp.o"
  "CMakeFiles/generic_arch.dir/energy_model.cpp.o.d"
  "CMakeFiles/generic_arch.dir/generic_asic.cpp.o"
  "CMakeFiles/generic_arch.dir/generic_asic.cpp.o.d"
  "CMakeFiles/generic_arch.dir/microarch.cpp.o"
  "CMakeFiles/generic_arch.dir/microarch.cpp.o.d"
  "CMakeFiles/generic_arch.dir/power_trace.cpp.o"
  "CMakeFiles/generic_arch.dir/power_trace.cpp.o.d"
  "CMakeFiles/generic_arch.dir/sram.cpp.o"
  "CMakeFiles/generic_arch.dir/sram.cpp.o.d"
  "CMakeFiles/generic_arch.dir/tinyhd.cpp.o"
  "CMakeFiles/generic_arch.dir/tinyhd.cpp.o.d"
  "libgeneric_arch.a"
  "libgeneric_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/generic_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
