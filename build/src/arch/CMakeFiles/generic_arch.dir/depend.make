# Empty dependencies file for generic_arch.
# This may be replaced when dependencies are built.
