file(REMOVE_RECURSE
  "CMakeFiles/generic_common.dir/mitchell.cpp.o"
  "CMakeFiles/generic_common.dir/mitchell.cpp.o.d"
  "CMakeFiles/generic_common.dir/quantizer.cpp.o"
  "CMakeFiles/generic_common.dir/quantizer.cpp.o.d"
  "CMakeFiles/generic_common.dir/rng.cpp.o"
  "CMakeFiles/generic_common.dir/rng.cpp.o.d"
  "CMakeFiles/generic_common.dir/stats.cpp.o"
  "CMakeFiles/generic_common.dir/stats.cpp.o.d"
  "libgeneric_common.a"
  "libgeneric_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/generic_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
