file(REMOVE_RECURSE
  "libgeneric_common.a"
)
