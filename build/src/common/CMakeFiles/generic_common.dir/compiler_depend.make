# Empty compiler generated dependencies file for generic_common.
# This may be replaced when dependencies are built.
