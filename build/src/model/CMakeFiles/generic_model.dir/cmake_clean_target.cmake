file(REMOVE_RECURSE
  "libgeneric_model.a"
)
