file(REMOVE_RECURSE
  "CMakeFiles/generic_model.dir/binary_model.cpp.o"
  "CMakeFiles/generic_model.dir/binary_model.cpp.o.d"
  "CMakeFiles/generic_model.dir/hdc_classifier.cpp.o"
  "CMakeFiles/generic_model.dir/hdc_classifier.cpp.o.d"
  "CMakeFiles/generic_model.dir/hdc_cluster.cpp.o"
  "CMakeFiles/generic_model.dir/hdc_cluster.cpp.o.d"
  "CMakeFiles/generic_model.dir/model_io.cpp.o"
  "CMakeFiles/generic_model.dir/model_io.cpp.o.d"
  "CMakeFiles/generic_model.dir/pipeline.cpp.o"
  "CMakeFiles/generic_model.dir/pipeline.cpp.o.d"
  "libgeneric_model.a"
  "libgeneric_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/generic_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
