
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/binary_model.cpp" "src/model/CMakeFiles/generic_model.dir/binary_model.cpp.o" "gcc" "src/model/CMakeFiles/generic_model.dir/binary_model.cpp.o.d"
  "/root/repo/src/model/hdc_classifier.cpp" "src/model/CMakeFiles/generic_model.dir/hdc_classifier.cpp.o" "gcc" "src/model/CMakeFiles/generic_model.dir/hdc_classifier.cpp.o.d"
  "/root/repo/src/model/hdc_cluster.cpp" "src/model/CMakeFiles/generic_model.dir/hdc_cluster.cpp.o" "gcc" "src/model/CMakeFiles/generic_model.dir/hdc_cluster.cpp.o.d"
  "/root/repo/src/model/model_io.cpp" "src/model/CMakeFiles/generic_model.dir/model_io.cpp.o" "gcc" "src/model/CMakeFiles/generic_model.dir/model_io.cpp.o.d"
  "/root/repo/src/model/pipeline.cpp" "src/model/CMakeFiles/generic_model.dir/pipeline.cpp.o" "gcc" "src/model/CMakeFiles/generic_model.dir/pipeline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hdc/CMakeFiles/generic_hdc.dir/DependInfo.cmake"
  "/root/repo/build/src/encoding/CMakeFiles/generic_encoding.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/generic_data.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/generic_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
