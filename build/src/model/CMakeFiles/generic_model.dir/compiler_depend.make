# Empty compiler generated dependencies file for generic_model.
# This may be replaced when dependencies are built.
