# Empty compiler generated dependencies file for generic_data.
# This may be replaced when dependencies are built.
