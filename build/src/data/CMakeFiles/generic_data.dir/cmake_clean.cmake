file(REMOVE_RECURSE
  "CMakeFiles/generic_data.dir/benchmarks.cpp.o"
  "CMakeFiles/generic_data.dir/benchmarks.cpp.o.d"
  "CMakeFiles/generic_data.dir/csv.cpp.o"
  "CMakeFiles/generic_data.dir/csv.cpp.o.d"
  "CMakeFiles/generic_data.dir/dataset.cpp.o"
  "CMakeFiles/generic_data.dir/dataset.cpp.o.d"
  "CMakeFiles/generic_data.dir/fcps.cpp.o"
  "CMakeFiles/generic_data.dir/fcps.cpp.o.d"
  "CMakeFiles/generic_data.dir/generators.cpp.o"
  "CMakeFiles/generic_data.dir/generators.cpp.o.d"
  "libgeneric_data.a"
  "libgeneric_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/generic_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
