file(REMOVE_RECURSE
  "libgeneric_data.a"
)
