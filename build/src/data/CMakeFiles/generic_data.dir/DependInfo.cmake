
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/benchmarks.cpp" "src/data/CMakeFiles/generic_data.dir/benchmarks.cpp.o" "gcc" "src/data/CMakeFiles/generic_data.dir/benchmarks.cpp.o.d"
  "/root/repo/src/data/csv.cpp" "src/data/CMakeFiles/generic_data.dir/csv.cpp.o" "gcc" "src/data/CMakeFiles/generic_data.dir/csv.cpp.o.d"
  "/root/repo/src/data/dataset.cpp" "src/data/CMakeFiles/generic_data.dir/dataset.cpp.o" "gcc" "src/data/CMakeFiles/generic_data.dir/dataset.cpp.o.d"
  "/root/repo/src/data/fcps.cpp" "src/data/CMakeFiles/generic_data.dir/fcps.cpp.o" "gcc" "src/data/CMakeFiles/generic_data.dir/fcps.cpp.o.d"
  "/root/repo/src/data/generators.cpp" "src/data/CMakeFiles/generic_data.dir/generators.cpp.o" "gcc" "src/data/CMakeFiles/generic_data.dir/generators.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/generic_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
