# Empty compiler generated dependencies file for generic_train.
# This may be replaced when dependencies are built.
