file(REMOVE_RECURSE
  "CMakeFiles/generic_train.dir/generic_train.cpp.o"
  "CMakeFiles/generic_train.dir/generic_train.cpp.o.d"
  "generic_train"
  "generic_train.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/generic_train.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
