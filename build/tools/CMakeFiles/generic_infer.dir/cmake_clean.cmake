file(REMOVE_RECURSE
  "CMakeFiles/generic_infer.dir/generic_infer.cpp.o"
  "CMakeFiles/generic_infer.dir/generic_infer.cpp.o.d"
  "generic_infer"
  "generic_infer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/generic_infer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
