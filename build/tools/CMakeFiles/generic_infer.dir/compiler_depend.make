# Empty compiler generated dependencies file for generic_infer.
# This may be replaced when dependencies are built.
