file(REMOVE_RECURSE
  "CMakeFiles/fig8_training.dir/fig8_training.cpp.o"
  "CMakeFiles/fig8_training.dir/fig8_training.cpp.o.d"
  "fig8_training"
  "fig8_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
