file(REMOVE_RECURSE
  "CMakeFiles/fig9_inference.dir/fig9_inference.cpp.o"
  "CMakeFiles/fig9_inference.dir/fig9_inference.cpp.o.d"
  "fig9_inference"
  "fig9_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
