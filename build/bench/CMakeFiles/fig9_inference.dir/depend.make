# Empty dependencies file for fig9_inference.
# This may be replaced when dependencies are built.
