file(REMOVE_RECURSE
  "CMakeFiles/fig3_conventional.dir/fig3_conventional.cpp.o"
  "CMakeFiles/fig3_conventional.dir/fig3_conventional.cpp.o.d"
  "fig3_conventional"
  "fig3_conventional.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_conventional.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
