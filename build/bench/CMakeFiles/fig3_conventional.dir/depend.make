# Empty dependencies file for fig3_conventional.
# This may be replaced when dependencies are built.
