
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table1_accuracy.cpp" "bench/CMakeFiles/table1_accuracy.dir/table1_accuracy.cpp.o" "gcc" "bench/CMakeFiles/table1_accuracy.dir/table1_accuracy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/generic_common.dir/DependInfo.cmake"
  "/root/repo/build/src/hdc/CMakeFiles/generic_hdc.dir/DependInfo.cmake"
  "/root/repo/build/src/encoding/CMakeFiles/generic_encoding.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/generic_data.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/generic_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/generic_model.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/generic_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/hwmodel/CMakeFiles/generic_hwmodel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
