file(REMOVE_RECURSE
  "CMakeFiles/fig5_dimension.dir/fig5_dimension.cpp.o"
  "CMakeFiles/fig5_dimension.dir/fig5_dimension.cpp.o.d"
  "fig5_dimension"
  "fig5_dimension.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_dimension.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
