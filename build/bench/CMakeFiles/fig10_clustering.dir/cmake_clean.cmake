file(REMOVE_RECURSE
  "CMakeFiles/fig10_clustering.dir/fig10_clustering.cpp.o"
  "CMakeFiles/fig10_clustering.dir/fig10_clustering.cpp.o.d"
  "fig10_clustering"
  "fig10_clustering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_clustering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
