# Empty dependencies file for micro_hdc.
# This may be replaced when dependencies are built.
