file(REMOVE_RECURSE
  "CMakeFiles/micro_hdc.dir/micro_hdc.cpp.o"
  "CMakeFiles/micro_hdc.dir/micro_hdc.cpp.o.d"
  "micro_hdc"
  "micro_hdc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_hdc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
