file(REMOVE_RECURSE
  "CMakeFiles/table2_clustering.dir/table2_clustering.cpp.o"
  "CMakeFiles/table2_clustering.dir/table2_clustering.cpp.o.d"
  "table2_clustering"
  "table2_clustering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_clustering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
