# Empty compiler generated dependencies file for table2_clustering.
# This may be replaced when dependencies are built.
