file(REMOVE_RECURSE
  "CMakeFiles/test_hdc.dir/hdc/hypervector_test.cpp.o"
  "CMakeFiles/test_hdc.dir/hdc/hypervector_test.cpp.o.d"
  "CMakeFiles/test_hdc.dir/hdc/item_memory_test.cpp.o"
  "CMakeFiles/test_hdc.dir/hdc/item_memory_test.cpp.o.d"
  "CMakeFiles/test_hdc.dir/hdc/ops_test.cpp.o"
  "CMakeFiles/test_hdc.dir/hdc/ops_test.cpp.o.d"
  "CMakeFiles/test_hdc.dir/hdc/properties_test.cpp.o"
  "CMakeFiles/test_hdc.dir/hdc/properties_test.cpp.o.d"
  "test_hdc"
  "test_hdc.pdb"
  "test_hdc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hdc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
