file(REMOVE_RECURSE
  "CMakeFiles/test_arch.dir/arch/asic_state_test.cpp.o"
  "CMakeFiles/test_arch.dir/arch/asic_state_test.cpp.o.d"
  "CMakeFiles/test_arch.dir/arch/cycle_model_test.cpp.o"
  "CMakeFiles/test_arch.dir/arch/cycle_model_test.cpp.o.d"
  "CMakeFiles/test_arch.dir/arch/energy_model_test.cpp.o"
  "CMakeFiles/test_arch.dir/arch/energy_model_test.cpp.o.d"
  "CMakeFiles/test_arch.dir/arch/generic_asic_test.cpp.o"
  "CMakeFiles/test_arch.dir/arch/generic_asic_test.cpp.o.d"
  "CMakeFiles/test_arch.dir/arch/microarch_test.cpp.o"
  "CMakeFiles/test_arch.dir/arch/microarch_test.cpp.o.d"
  "CMakeFiles/test_arch.dir/arch/power_trace_test.cpp.o"
  "CMakeFiles/test_arch.dir/arch/power_trace_test.cpp.o.d"
  "CMakeFiles/test_arch.dir/arch/sram_test.cpp.o"
  "CMakeFiles/test_arch.dir/arch/sram_test.cpp.o.d"
  "CMakeFiles/test_arch.dir/arch/tinyhd_test.cpp.o"
  "CMakeFiles/test_arch.dir/arch/tinyhd_test.cpp.o.d"
  "test_arch"
  "test_arch.pdb"
  "test_arch[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
