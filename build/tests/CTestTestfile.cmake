# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_hdc[1]_include.cmake")
include("/root/repo/build/tests/test_encoding[1]_include.cmake")
include("/root/repo/build/tests/test_data[1]_include.cmake")
include("/root/repo/build/tests/test_ml[1]_include.cmake")
include("/root/repo/build/tests/test_model[1]_include.cmake")
include("/root/repo/build/tests/test_arch[1]_include.cmake")
include("/root/repo/build/tests/test_hwmodel[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
