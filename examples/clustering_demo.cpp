// Unsupervised learning on edge: HDC clustering (paper §2.1/§4.2.3) on the
// FCPS suite (Table 2's five plus Lsun/Chainlink/Atom), side by side with
// k-means, scored by normalized mutual information against ground truth.
//
//   $ ./build/examples/clustering_demo
#include <cstdio>

#include "data/fcps.h"
#include "encoding/encoders.h"
#include "ml/kmeans.h"
#include "ml/metrics.h"
#include "model/hdc_cluster.h"
#include "model/pipeline.h"

using namespace generic;

int main() {
  std::printf("%-14s %8s %10s %10s %8s\n", "dataset", "k", "k-means",
              "HDC", "epochs");
  for (const auto& name : data::fcps_extended_names()) {
    const data::ClusterDataset ds = data::make_fcps(name);

    // Baseline: Lloyd's k-means with k-means++ seeding on raw features.
    ml::KMeansConfig kcfg;
    kcfg.k = ds.num_clusters;
    const auto km = ml::kmeans(ds.points, kcfg);

    // HDC: encode every point into hyperspace, then cluster by cosine
    // similarity with copy-model epochs — exactly what the ASIC runs.
    enc::EncoderConfig cfg;
    cfg.dims = 4096;
    cfg.window = std::min<std::size_t>(3, ds.num_features());
    enc::GenericEncoder encoder(cfg);
    encoder.fit(ds.points);
    const auto encoded = model::encode_all(encoder, ds.points);
    model::HdcCluster hc(cfg.dims, ds.num_clusters);
    const std::size_t epochs = hc.fit(encoded);

    std::printf("%-14s %8zu %10.3f %10.3f %8zu\n", ds.name.c_str(),
                ds.num_clusters,
                ml::normalized_mutual_information(ds.labels, km.labels),
                ml::normalized_mutual_information(ds.labels,
                                                  hc.labels(encoded)),
                epochs);
  }
  std::printf("\nHDC clusters in hyperspace with add/XOR/popcount only —\n"
              "no multiply-heavy distance kernels — which is what makes the\n"
              "ASIC's 0.05-0.1 uJ/input possible (Figure 10).\n");
  return 0;
}
