// Encoder choice case study: language identification (the paper's LANG
// benchmark, §3.2). Text is an order-free task — what matters is which
// character subsequences occur, not where — so positional encoders fail
// while subsequence encoders hit ~100%. GENERIC covers both regimes with
// one knob: setting the window ids to zero (Eq. 1 with id = {0}).
//
//   $ ./build/examples/language_identification
#include <cstdio>

#include "data/benchmarks.h"
#include "encoding/encoders.h"
#include "model/pipeline.h"

using namespace generic;

namespace {

double run(enc::EncoderKind kind, bool use_ids, const data::Dataset& ds) {
  enc::EncoderConfig cfg;
  cfg.dims = 4096;
  cfg.window = 3;
  cfg.use_ids = use_ids;
  auto encoder = enc::make_encoder(kind, cfg);
  return 100.0 * model::run_hdc_classification(*encoder, ds, 20).test_accuracy;
}

}  // namespace

int main() {
  // 21 languages, each a Markov chain over a 26-letter alphabet with a
  // language-specific letter and transition profile; sequences start at
  // random offsets so absolute position is meaningless.
  const data::Dataset ds = data::make_benchmark("LANG");
  std::printf("LANG: %zu languages, %zu chars/sample, %zu train samples\n\n",
              ds.num_classes, ds.num_features(), ds.train_size());

  std::printf("positional encoders (bind absolute position):\n");
  std::printf("  %-22s %5.1f%%\n", "permutation",
              run(enc::EncoderKind::kPermutation, true, ds));
  std::printf("  %-22s %5.1f%%\n", "level-id",
              run(enc::EncoderKind::kLevelId, true, ds));

  std::printf("subsequence encoders (order-free statistics):\n");
  std::printf("  %-22s %5.1f%%\n", "ngram",
              run(enc::EncoderKind::kNgram, true, ds));
  std::printf("  %-22s %5.1f%%   <- categorical items (extension)\n",
              "sym-ngram",
              run(enc::EncoderKind::kSymbolNgram, true, ds));
  std::printf("  %-22s %5.1f%%   <- ids set to {0}, paper §3.1\n",
              "GENERIC (ids off)",
              run(enc::EncoderKind::kGeneric, false, ds));

  std::printf("GENERIC with ids on (wrong config for this task):\n");
  std::printf("  %-22s %5.1f%%\n", "GENERIC (ids on)",
              run(enc::EncoderKind::kGeneric, true, ds));

  std::printf(
      "\nOne flexible encoder + per-application spec = no custom silicon\n"
      "per domain; that is the architectural thesis of the paper.\n");
  return 0;
}
