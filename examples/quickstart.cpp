// Quickstart: train an HDC classifier with the GENERIC encoding on a
// benchmark clone, evaluate it, and peek at the knobs the library exposes.
//
//   $ ./build/examples/quickstart
//
// Walks the full public API surface in ~60 lines: dataset -> encoder ->
// classifier -> dimension reduction -> quantization.
#include <cstdio>

#include "data/benchmarks.h"
#include "encoding/encoders.h"
#include "model/hdc_classifier.h"
#include "model/pipeline.h"

using namespace generic;

int main() {
  // 1. Get a dataset. Eleven synthetic clones of the paper's benchmarks
  //    ship with the library; ISOLET is a 26-class spoken-letter stand-in.
  const data::Dataset ds = data::make_benchmark("ISOLET");
  std::printf("dataset %s: %zu train / %zu test, %zu features, %zu classes\n",
              ds.name.c_str(), ds.train_size(), ds.test_size(),
              ds.num_features(), ds.num_classes);

  // 2. Configure the GENERIC encoder (Eq. 1 of the paper): D = 4K
  //    dimensions, 64 quantization levels, window n = 3, id binding on.
  enc::EncoderConfig cfg;
  cfg.dims = 4096;
  enc::GenericEncoder encoder(cfg);

  // 3. Fit the quantizer, encode both splits once, train with retraining.
  encoder.fit(ds.train_x);
  const auto train_hv = model::encode_all(encoder, ds.train_x);
  const auto test_hv = model::encode_all(encoder, ds.test_x);

  model::HdcClassifier clf(cfg.dims, ds.num_classes);
  clf.fit(train_hv, ds.train_y, /*epochs=*/20);

  auto accuracy = [&](auto predict) {
    std::size_t hits = 0;
    for (std::size_t i = 0; i < test_hv.size(); ++i)
      hits += predict(test_hv[i]) == ds.test_y[i];
    return 100.0 * static_cast<double>(hits) /
           static_cast<double>(test_hv.size());
  };

  std::printf("full model (4096 dims, 16-bit): %.1f%%\n",
              accuracy([&](const hdc::IntHV& q) { return clf.predict(q); }));

  // 4. On-demand dimension reduction: trade accuracy for 4x less work by
  //    using the first 1K dimensions with the stored sub-norms.
  std::printf("reduced model (1024 dims):      %.1f%%\n",
              accuracy([&](const hdc::IntHV& q) {
                return clf.predict_reduced(q, 1024, model::NormMode::kUpdated);
              }));

  // 5. Aggressive quantization: HDC barely notices 4-bit class elements.
  clf.quantize(4);
  std::printf("quantized model (4-bit):        %.1f%%\n",
              accuracy([&](const hdc::IntHV& q) { return clf.predict(q); }));
  return 0;
}
