// Continuous learning on the edge: deploy a partially trained model, then
// adapt it one labelled sample at a time with the ASIC's online-update
// path (inference + a single §4.2.2 correction on mispredictions) while
// tracking the energy the adaptation costs.
//
//   $ ./build/examples/online_adaptation
//
// Scenario: a gesture-control armband (the EMG benchmark) shipped with a
// factory model trained on only a third of the calibration data; the rest
// arrives as the user corrects it during the first minutes of wear.
#include <cstdio>

#include "arch/generic_asic.h"
#include "data/benchmarks.h"

using namespace generic;

int main() {
  const auto ds = data::make_benchmark("EMG");
  arch::AppSpec spec;
  spec.dims = 4096;
  spec.features = ds.num_features();
  spec.classes = ds.num_classes;

  // Factory training on the first third of the calibration set.
  const std::size_t factory_n = ds.train_size() / 3;
  std::vector<std::vector<float>> factory_x(ds.train_x.begin(),
                                            ds.train_x.begin() + static_cast<std::ptrdiff_t>(factory_n));
  std::vector<int> factory_y(ds.train_y.begin(),
                             ds.train_y.begin() + static_cast<std::ptrdiff_t>(factory_n));
  arch::GenericAsic asic(spec);
  asic.train(factory_x, factory_y, 10);

  auto accuracy = [&] {
    std::size_t hits = 0;
    for (std::size_t i = 0; i < ds.test_x.size(); ++i)
      hits += asic.infer(ds.test_x[i]) == ds.test_y[i];
    return 100.0 * static_cast<double>(hits) /
           static_cast<double>(ds.test_size());
  };

  std::printf("factory model (%zu samples): %.1f%% test accuracy\n",
              factory_n, accuracy());

  // Stream the remaining calibration data through online updates.
  asic.reset_counts();
  std::size_t corrections = 0;
  for (std::size_t i = factory_n; i < ds.train_size(); ++i) {
    const int pred = asic.online_update(ds.train_x[i], ds.train_y[i]);
    corrections += pred != ds.train_y[i];
  }
  const std::size_t streamed = ds.train_size() - factory_n;
  std::printf("streamed %zu labelled samples, %zu corrections applied\n",
              streamed, corrections);
  std::printf("adaptation cost: %.1f uJ total (%.3f uJ/sample), %.1f ms\n",
              asic.energy_j() * 1e6,
              asic.energy_j() * 1e6 / static_cast<double>(streamed),
              asic.elapsed_seconds() * 1e3);
  std::printf("adapted model: %.1f%% test accuracy\n", accuracy());
  return 0;
}
