// Edge deployment walkthrough: run an application on the GENERIC ASIC
// model end-to-end and read out the silicon-level consequences — cycles,
// latency, energy, and what each §4.3 low-power knob buys.
//
//   $ ./build/examples/edge_deployment
//
// Scenario: a battery-powered activity-recognition wearable (the UCIHAR
// benchmark). The budget math at the end is the paper's motivation:
// year-long operation on a coin cell. (Knob tolerance is application
// dependent — see bench/fig6_voltage and bench/fig9_inference for how an
// operating point is chosen per app.)
#include <cstdio>

#include "arch/generic_asic.h"
#include "data/benchmarks.h"

using namespace generic;

int main() {
  const auto ds = data::make_benchmark("UCIHAR");

  // Program the accelerator's spec port for this application.
  arch::AppSpec spec;
  spec.dims = 4096;
  spec.features = ds.num_features();
  spec.classes = ds.num_classes;
  spec.window = 3;
  spec.use_ids = data::generic_config_for("UCIHAR").use_ids;

  arch::GenericAsic asic(spec);
  std::printf("training on-device (%zu samples)...\n", ds.train_size());
  const std::size_t epochs = asic.train(ds.train_x, ds.train_y, 20);
  std::printf("  retraining epochs: %zu, train energy %.2f uJ, %.2f ms\n",
              epochs, asic.energy_j() * 1e6, asic.elapsed_seconds() * 1e3);

  auto evaluate = [&](const char* label) {
    asic.reset_counts();
    std::size_t hits = 0;
    for (std::size_t i = 0; i < ds.test_x.size(); ++i)
      hits += asic.infer(ds.test_x[i]) == ds.test_y[i];
    const double acc =
        100.0 * static_cast<double>(hits) / static_cast<double>(ds.test_size());
    const double uj_per_input =
        asic.energy_j() * 1e6 / static_cast<double>(ds.test_size());
    const double us_per_input =
        asic.elapsed_seconds() * 1e6 / static_cast<double>(ds.test_size());
    std::printf("  %-28s %.1f%%  %8.3f uJ/input  %8.1f us/input\n", label,
                acc, uj_per_input, us_per_input);
    return uj_per_input;
  };

  std::printf("\ninference operating points:\n");
  const double base = evaluate("nominal (4K dims, 16b)");

  asic.set_active_dims(1024);
  evaluate("dimension-reduced (1K dims)");

  asic.quantize(8);
  evaluate("+ 8-bit class memory");

  asic.apply_voltage_scaling(0.001);  // 0.1% bit flips in the class SRAM
  const double lp = evaluate("+ voltage over-scaling");

  std::printf("\nlow-power point saves %.1fx energy per inference\n",
              base / lp);

  // Battery life: a CR2032 holds ~2.4 kJ. One inference per second plus
  // gated idle (the §4.3.2 static floor).
  const double idle_w =
      asic.energy_model().static_power_mw(asic.spec(), asic.vos()).total() * 1e-3;
  const double per_second = lp * 1e-6 + idle_w;
  std::printf("CR2032 (~2400 J) at 1 inference/s: ~%.1f years\n",
              2400.0 / per_second / 3.15e7);
  return 0;
}
